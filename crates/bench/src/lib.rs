//! # flexstep-bench
//!
//! Experiment harness regenerating every table and figure of the FlexStep
//! paper's evaluation (§VI). Each `fig*`/`tab*` binary prints the same
//! rows/series the paper reports; this library holds the reusable
//! experiment runners so the binaries stay thin and the logic is
//! testable.
//!
//! | Target | Regenerates |
//! |---|---|
//! | `fig4` | Performance slowdown, Parsec + SPECint (LockStep / FlexStep / Nzdc) |
//! | `fig5` | % schedulable task sets, configs (a)–(f) |
//! | `fig6` | Dual- vs triple-core verification slowdown |
//! | `fig7` | Error-detection latency distribution |
//! | `fig8` | Area/power scaling 2→32 cores |
//! | `tab3` | 4-core Vanilla vs FlexStep area/power |

#![warn(missing_docs)]

pub mod ablate;
pub mod campaign;
pub mod coverage;

pub mod manycore;
pub mod modes;

pub use flexstep_core::harness::{baseline_cycles, VerifiedRun};
pub use flexstep_core::{
    inject_random_fault, FabricConfig, FaultPlan, LatencyStats, PairingSchedule, RecoveryPolicy,
    ReliabilityMode, Scenario, Topology, RELIABILITY_MODES,
};
use flexstep_isa::asm::Program;
pub use flexstep_sim::{Clock, Soc, SocConfig};
pub use flexstep_workloads::{by_name, nzdc_transform, Scale, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the Fig. 4 dual-core scenario (core 0 main, core 1 checker)
/// for a workload program — the bench crates' canonical front door.
pub(crate) fn dual_core_run(program: &Program, fabric: FabricConfig) -> VerifiedRun {
    Scenario::new(program)
        .cores(2)
        .fabric(fabric)
        .build()
        .expect("dual-core scenario configures")
}

/// Typed failure surface for the experiment binaries.
///
/// Every `fig*`/`perf_report` binary funnels its fallible paths — bad
/// scenario configuration, artifact I/O, registry lookups, violated run
/// invariants — through this enum and exits non-zero with the rendered
/// cause instead of unwinding through a panic backtrace.
#[derive(Debug)]
pub enum BenchError {
    /// A scenario or campaign configuration was rejected.
    Scenario(flexstep_core::ScenarioError),
    /// A SoC/cache configuration was rejected before any run started.
    Config(String),
    /// Reading or writing an artifact failed.
    Io {
        /// Path of the file involved.
        path: String,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// A workload name was not found in the registry.
    UnknownWorkload(String),
    /// A run violated an invariant the report depends on (did not
    /// complete within budget, attribution counters inconsistent, ...).
    Invariant(String),
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Scenario(e) => write!(f, "scenario rejected: {e}"),
            BenchError::Config(msg) => write!(f, "bad configuration: {msg}"),
            BenchError::Io { path, source } => write!(f, "{path}: {source}"),
            BenchError::UnknownWorkload(name) => {
                write!(f, "unknown workload {name:?}")
            }
            BenchError::Invariant(msg) => write!(f, "run invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Scenario(e) => Some(e),
            BenchError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<flexstep_core::ScenarioError> for BenchError {
    fn from(e: flexstep_core::ScenarioError) -> Self {
        BenchError::Scenario(e)
    }
}

/// Writes `json` to `path`, mapping failures into [`BenchError::Io`].
pub fn write_artifact(path: &str, json: &str) -> Result<(), BenchError> {
    std::fs::write(path, json).map_err(|source| BenchError::Io {
        path: path.to_string(),
        source,
    })
}

/// Runs a binary body and converts its error into a non-zero exit:
/// prints `error: <cause>` (and the source chain) to stderr and returns
/// [`std::process::ExitCode::FAILURE`].
pub fn run_bin(body: impl FnOnce() -> Result<(), BenchError>) -> std::process::ExitCode {
    match body() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            let mut src = std::error::Error::source(&e);
            while let Some(cause) = src {
                eprintln!("  caused by: {cause}");
                src = cause.source();
            }
            std::process::ExitCode::FAILURE
        }
    }
}

/// Extracts the value following a `--flag value` pair from an argv
/// slice — the experiment binaries' shared CLI parser.
///
/// ```
/// let argv: Vec<String> = ["fig8", "--out", "x.json"]
///     .iter().map(|s| s.to_string()).collect();
/// assert_eq!(flexstep_bench::arg_value(&argv, "--out"), Some("x.json".into()));
/// assert_eq!(flexstep_bench::arg_value(&argv, "--trace"), None);
/// ```
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Instruction budget per single workload run.
pub(crate) const MAX_INSTRUCTIONS: u64 = 500_000_000;
/// Engine-step budget per verified run.
pub(crate) const MAX_STEPS: u64 = 2_000_000_000;

/// One Fig. 4 row: slowdowns relative to unprotected execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Workload name.
    pub name: &'static str,
    /// LockStep slowdown (1.0 by construction: the checker core runs in
    /// cycle lockstep and never stalls the main core).
    pub lockstep: f64,
    /// FlexStep slowdown (checkpoint extraction + FIFO backpressure).
    pub flexstep: f64,
    /// Nzdc slowdown (software-duplicated instruction stream).
    pub nzdc: Option<f64>,
}

/// Computes one Fig. 4 row.
///
/// # Panics
///
/// Panics if the workload fails to run to completion (a bug, not a
/// result).
pub fn fig4_row(w: &Workload, scale: Scale) -> Fig4Row {
    let program = w.program(scale);
    let base = baseline_cycles(&program, MAX_INSTRUCTIONS).expect("baseline runs");

    let mut run = dual_core_run(&program, FabricConfig::paper());
    let report = run.run_to_completion(MAX_STEPS);
    assert!(report.completed, "{} did not finish verified", w.name);
    assert_eq!(report.segments_failed, 0, "{} failed verification", w.name);
    let flexstep = report.main_finish_cycle as f64 / base as f64;

    // Nzdc: the transformed program runs unprotected on one core.
    // (The real nZDC fails to compile some workloads; ours all
    // transform, but keep the Option for parity with the figure.)
    let nzdc = nzdc_transform(&program).ok().map(|t| {
        let mut soc = Soc::new(SocConfig::paper(1)).expect("config");
        soc.run_to_ecall(&t, MAX_INSTRUCTIONS);
        soc.now() as f64 / base as f64
    });

    Fig4Row {
        name: w.name,
        lockstep: 1.0,
        flexstep,
        nzdc,
    }
}

/// Runs the Fig. 4 experiment over a suite.
///
/// # Panics
///
/// Panics if a workload fails to run to completion (a bug, not a result).
pub fn fig4(workloads: &[Workload], scale: Scale) -> Vec<Fig4Row> {
    workloads.iter().map(|w| fig4_row(w, scale)).collect()
}

/// [`fig4`] with per-workload parallelism: each workload's three runs
/// execute on their own thread (simulations are independent and
/// deterministic, so the rows are identical to the sequential runner's).
pub fn fig4_parallel(workloads: &[Workload], scale: Scale) -> Vec<Fig4Row> {
    run_rows_parallel(workloads, |w| fig4_row(w, scale))
}

/// Runs `row` for every workload on its own scoped thread, preserving
/// input order — the campaign-level counterpart of
/// `flexstep_sched::sweep_parallel`.
fn run_rows_parallel<R: Send>(
    workloads: &[Workload],
    row: impl Fn(&Workload) -> R + Sync,
) -> Vec<R> {
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(workloads.len(), || None);
    std::thread::scope(|scope| {
        for (slot, w) in out.iter_mut().zip(workloads) {
            let row = &row;
            scope.spawn(move || {
                *slot = Some(row(w));
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("all rows computed"))
        .collect()
}

/// FxHash-style 64-bit byte-string hash (rotate–xor–multiply with the
/// golden-ratio constant). Used to derive decorrelated, deterministic
/// RNG streams from one campaign seed: `seed ^ fxhash64(name)` gives
/// every workload (or campaign chunk) its own stream while keeping runs
/// reproducible.
pub fn fxhash64(bytes: &[u8]) -> u64 {
    const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = 0u64;
    for &b in bytes {
        h = (h.rotate_left(5) ^ u64::from(b)).wrapping_mul(K);
    }
    h
}

/// Derives the decorrelated RNG stream for one named unit of work
/// (a workload, a campaign chunk, a shard) from a campaign seed:
/// `seed ^ fxhash64(name)`.
///
/// The derivation is byte-stable — campaign artifacts and the Fig. 7
/// parallel sweep depend on it never changing (pinned by
/// `derive_stream_is_byte_stable` and the fig7 stream test):
///
/// ```
/// use flexstep_bench::{derive_stream, fxhash64};
/// assert_eq!(derive_stream(2025, "chunk-3"), 2025 ^ fxhash64(b"chunk-3"));
/// // Different names give decorrelated streams off the same seed...
/// assert_ne!(derive_stream(2025, "chunk-3"), derive_stream(2025, "chunk-4"));
/// // ...and the same name reproduces the same stream.
/// assert_eq!(derive_stream(7, "dijkstra"), derive_stream(7, "dijkstra"));
/// ```
pub fn derive_stream(seed: u64, name: &str) -> u64 {
    seed ^ fxhash64(name.as_bytes())
}

/// Geometric mean of a slowdown series.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// One Fig. 6 row: dual- vs triple-core verification slowdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Workload name.
    pub name: &'static str,
    /// Dual-core (1:1) mode slowdown.
    pub dual: f64,
    /// Triple-core (1:2) mode slowdown.
    pub triple: f64,
}

/// Computes one Fig. 6 row.
///
/// # Panics
///
/// Panics if the workload fails to complete.
pub fn fig6_row(w: &Workload, scale: Scale) -> Fig6Row {
    let program = w.program(scale);
    let base = baseline_cycles(&program, MAX_INSTRUCTIONS).expect("baseline runs");
    let mut dual = dual_core_run(&program, FabricConfig::paper());
    let rd = dual.run_to_completion(MAX_STEPS);
    let mut triple = Scenario::new(&program)
        .cores(3)
        .topology(Topology::Custom(vec![(0, vec![1, 2])]))
        .fabric(FabricConfig::paper())
        .build()
        .expect("setup");
    let rt = triple.run_to_completion(MAX_STEPS);
    assert!(rd.completed && rt.completed, "{} did not finish", w.name);
    Fig6Row {
        name: w.name,
        dual: rd.main_finish_cycle as f64 / base as f64,
        triple: rt.main_finish_cycle as f64 / base as f64,
    }
}

/// Runs the Fig. 6 experiment (Parsec under both verification modes).
///
/// # Panics
///
/// Panics if a workload fails to complete.
pub fn fig6(workloads: &[Workload], scale: Scale) -> Vec<Fig6Row> {
    workloads.iter().map(|w| fig6_row(w, scale)).collect()
}

/// [`fig6`] with per-workload parallelism (see [`fig4_parallel`]).
pub fn fig6_parallel(workloads: &[Workload], scale: Scale) -> Vec<Fig6Row> {
    run_rows_parallel(workloads, |w| fig6_row(w, scale))
}

/// One Fig. 7 row: the detection-latency distribution of one workload.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Workload name.
    pub name: &'static str,
    /// Faults injected.
    pub injected: usize,
    /// Faults detected.
    pub detected: usize,
    /// Latency statistics over detected faults (µs).
    pub stats: Option<LatencyStats>,
    /// Raw latencies in µs (for histogramming).
    pub latencies_us: Vec<f64>,
}

/// Runs the Fig. 7 fault-injection campaign on one workload:
/// `injections` independent runs, each with one bit flipped in the
/// forwarded data at a random time.
///
/// # Panics
///
/// Panics if a workload fails to complete.
pub fn fig7_campaign(workload: &Workload, scale: Scale, injections: usize, seed: u64) -> Fig7Row {
    fig7_campaign_with(workload, scale, injections, seed, FabricConfig::paper())
}

/// [`fig7_campaign`] under an explicit fabric configuration — the
/// segment-length ablation runs the same campaign across configurations.
///
/// # Panics
///
/// Panics if a workload fails to complete.
pub fn fig7_campaign_with(
    workload: &Workload,
    scale: Scale,
    injections: usize,
    seed: u64,
    fabric: FabricConfig,
) -> Fig7Row {
    let program = workload.program(scale);
    let clock = Clock::paper();
    // Measure the fault-free span once to draw injection times.
    let mut probe = dual_core_run(&program, fabric);
    let span = probe.run_to_completion(MAX_STEPS);
    assert!(span.completed, "{} did not finish", workload.name);
    let horizon = span.main_finish_cycle.max(1);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut injected = 0;
    let mut latencies = Vec::new();
    for _ in 0..injections {
        let at = rng.gen_range(horizon / 20..horizon);
        // A declarative one-shot plan: the run loop arms it at `at` and
        // fires as soon as the stream carries data — the paper's
        // methodology of injecting into *forwarded* data. Runs that end
        // before the shot lands report no injection and are skipped.
        let shot_seed: u64 = rng.gen();
        let mut run = Scenario::new(&program)
            .cores(2)
            .fabric(fabric)
            .fault_plan(FaultPlan::random_with_seed(at, shot_seed))
            .build()
            .expect("setup");
        let report = run.run_to_completion(MAX_STEPS);
        let Some(injection) = report.injections.first() else {
            continue;
        };
        injected += 1;
        if let Some(d) = report.detections.first() {
            latencies.push(d.detected_at.saturating_sub(injection.at_cycle));
        }
    }
    let detected = latencies.len();
    Fig7Row {
        name: workload.name,
        injected,
        detected,
        stats: LatencyStats::from_cycles(&latencies, clock),
        latencies_us: latencies.iter().map(|&c| clock.cycles_to_us(c)).collect(),
    }
}

/// Runs the Fig. 7 campaign over a suite with per-workload parallelism
/// (see [`fig4_parallel`]). Each workload's campaign runs with its own
/// deterministic RNG stream derived as `seed ^ fxhash64(name)` — passing
/// the raw `seed` to every workload (the old behaviour) correlated the
/// injection sites across rows, so every workload sampled the same
/// relative injection instants. Rows are still fully reproducible for a
/// given `seed`.
pub fn fig7_parallel(
    workloads: &[Workload],
    scale: Scale,
    injections: usize,
    seed: u64,
) -> Vec<Fig7Row> {
    run_rows_parallel(workloads, |w| {
        fig7_campaign(w, scale, injections, derive_stream(seed, w.name))
    })
}

/// Renders a µs histogram line (8 µs buckets to 120 µs, like the Fig. 7
/// x-axis; the binning is [`campaign::latency_buckets`], so the sparkline
/// always agrees with the JSON `histogram_8us` arrays).
pub fn latency_histogram(latencies_us: &[f64]) -> String {
    let buckets = campaign::latency_buckets(latencies_us);
    let max = buckets.iter().copied().max().unwrap_or(1).max(1);
    buckets
        .iter()
        .map(|&b| {
            let level = (b * 8).div_ceil(max);
            match level {
                0 => ' ',
                1 => '.',
                2 => ':',
                3 => '-',
                4 => '=',
                5 => '+',
                6 => '*',
                7 => '#',
                _ => '@',
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexstep_workloads::by_name;

    #[test]
    fn geomean_of_identity_is_one() {
        assert!((geomean([1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }

    #[test]
    fn fig4_one_workload_shape() {
        let w = by_name("libquantum").unwrap();
        let rows = fig4(&[w], Scale::Test);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!((r.lockstep - 1.0).abs() < 1e-12);
        assert!(
            r.flexstep >= 1.0,
            "FlexStep cannot be faster: {}",
            r.flexstep
        );
        assert!(
            r.flexstep < 1.3,
            "FlexStep slowdown must be small: {}",
            r.flexstep
        );
        let nzdc = r.nzdc.expect("transformable");
        assert!(nzdc > 1.2, "Nzdc must be visibly slower: {nzdc}");
        assert!(nzdc > r.flexstep, "Nzdc must be slower than FlexStep");
    }

    #[test]
    fn fig6_triple_at_least_dual() {
        let w = by_name("dedup").unwrap();
        let rows = fig6(&[w], Scale::Test);
        let r = &rows[0];
        assert!(r.dual >= 1.0);
        assert!(
            r.triple >= r.dual - 0.005,
            "triple mode cannot be meaningfully faster: {r:?}"
        );
    }

    #[test]
    fn fig7_campaign_detects_most_faults() {
        let w = by_name("libquantum").unwrap();
        let row = fig7_campaign(&w, Scale::Test, 10, 42);
        assert!(row.injected >= 5, "campaign must inject: {}", row.injected);
        assert!(
            row.detected * 10 >= row.injected * 7,
            "most faults detected: {}/{}",
            row.detected,
            row.injected
        );
        let stats = row.stats.expect("some detections");
        assert!(stats.mean_us > 0.0);
        assert!(
            stats.max_us < 1000.0,
            "latency should be µs-scale: {}",
            stats.max_us
        );
    }

    #[test]
    fn fxhash64_is_deterministic_and_separates_names() {
        assert_eq!(fxhash64(b"dedup"), fxhash64(b"dedup"));
        assert_ne!(fxhash64(b"dedup"), fxhash64(b"ferret"));
        assert_ne!(fxhash64(b"streamcluster"), fxhash64(b"swaptions"));
        assert_ne!(fxhash64(b"x"), 0);
    }

    #[test]
    fn derive_stream_is_byte_stable() {
        // The exact derivation campaign artifacts are keyed on. Changing
        // these constants invalidates every recorded shard artifact.
        assert_eq!(derive_stream(0, ""), 0);
        assert_eq!(derive_stream(42, "chunk-0"), 0x9514_f5ef_e6f6_ee9b);
        assert_eq!(derive_stream(0, "dedup"), 0x303b_adf5_7df2_d430);
        assert_eq!(derive_stream(7, "shard-0003"), 7 ^ 0xa708_71d9_4e5a_4401);
    }

    #[test]
    fn fig7_parallel_derives_per_workload_seed_streams() {
        // Pins the decorrelation rule: row i runs with
        // `seed ^ fxhash64(name)`, not the raw shared seed.
        let w = by_name("libquantum").unwrap();
        let rows = fig7_parallel(std::slice::from_ref(&w), Scale::Test, 4, 42);
        let direct = fig7_campaign(&w, Scale::Test, 4, 42 ^ fxhash64(w.name.as_bytes()));
        assert_eq!(rows[0].injected, direct.injected);
        assert_eq!(rows[0].detected, direct.detected);
        assert_eq!(rows[0].latencies_us, direct.latencies_us);
    }

    #[test]
    fn histogram_renders_fixed_width() {
        let h = latency_histogram(&[1.0, 2.0, 20.0, 21.0, 22.0, 50.0]);
        assert_eq!(h.chars().count(), 15);
        assert!(h.trim().len() > 1);
    }
}
