//! Many-core fault-injection campaign (Fig. 7 × Fig. 8, DESIGN.md §10).
//!
//! The paper's Fig. 7 measures the error-detection latency distribution
//! under thousands of injections; Fig. 8 scales the SoC to many cores.
//! This module combines both: it fires a large [`FaultPlan`] campaign
//! across a 16/32/64-core shared-checker SoC and reports the latency
//! distribution **per main core and per checker pool**, plus coverage
//! as both `detected / landed` and `detected / armed`.
//!
//! The campaign is chunked: `runs` independent simulations each execute
//! `shots_per_run` shots (so arming cycles stay dense without a single
//! run's FIFO-ordered fault driver serialising thousands of shots), and
//! the chunks run concurrently under `std::thread::scope`. Every chunk
//! derives its own RNG stream as
//! [`derive_stream(seed, "chunk-{k}")`](crate::derive_stream), so the
//! campaign is deterministic for a given seed regardless of thread
//! interleaving.
//!
//! Attribution uses
//! [`RunReport::matched_detections`](flexstep_core::RunReport::matched_detections):
//! each detection
//! consumes the earliest unconsumed preceding injection on the same
//! main, so `detected <= landed <= armed` holds in every row by
//! construction — the invariant the `fig7_manycore` artifact pins.
//!
//! # Example: a one-chunk 8-core campaign
//!
//! ```
//! use flexstep_bench::campaign::{campaign_row, CampaignConfig};
//!
//! let cfg = CampaignConfig {
//!     cores: 8,
//!     cores_per_checker: 4,
//!     iters_per_main: 400,
//!     runs: 1,
//!     shots_per_run: 4,
//!     seed: 7,
//!     recovery: flexstep_bench::RecoveryPolicy::Detect,
//!     mode: flexstep_bench::ReliabilityMode::SegmentCheck,
//! };
//! let row = campaign_row(&cfg).expect("valid configuration");
//! assert!(row.completed);
//! assert_eq!(row.armed, cfg.armed());
//! assert!(row.detected <= row.landed && row.landed <= row.armed);
//! assert_eq!(row.per_pool.len(), row.checkers);
//! println!("{}", row.to_json());
//! ```

use crate::manycore::{checker_split, many_core_job};
use crate::{
    derive_stream, FabricConfig, FaultPlan, LatencyStats, RecoveryPolicy, ReliabilityMode,
    Scenario, Topology,
};
use flexstep_core::json::{array, numbers, numbers_u64, JsonObject};
use flexstep_core::{MatchedDetection, ScenarioError};
use flexstep_isa::asm::Program;
use flexstep_sim::Clock;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Histogram bucket width, µs (the Fig. 7 x-axis granularity).
pub const HISTOGRAM_BUCKET_US: f64 = 8.0;
/// Histogram bucket count (0–120 µs, last bucket open-ended).
pub const HISTOGRAM_BUCKETS: usize = 15;

/// Buckets a latency series into the Fig. 7 histogram (8 µs bins to
/// 120 µs; the last bin absorbs the tail).
pub fn latency_buckets(latencies_us: &[f64]) -> [u64; HISTOGRAM_BUCKETS] {
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    for &l in latencies_us {
        let b = ((l / HISTOGRAM_BUCKET_US) as usize).min(HISTOGRAM_BUCKETS - 1);
        buckets[b] += 1;
    }
    buckets
}

/// One many-core campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Total cores in the SoC.
    pub cores: usize,
    /// Cores per shared checker (4 → a 64-core SoC gets 16 checkers
    /// serving 48 mains).
    pub cores_per_checker: usize,
    /// Loop iterations per main-core workload.
    pub iters_per_main: i64,
    /// Independent simulation chunks (parallelised over threads).
    pub runs: usize,
    /// Shots armed per chunk.
    pub shots_per_run: usize,
    /// Campaign seed; chunk `k` runs on
    /// [`derive_stream(seed, "chunk-{k}")`](crate::derive_stream).
    pub seed: u64,
    /// What each chunk does on a detection: record it
    /// ([`RecoveryPolicy::Detect`], the Fig. 7 baseline) or roll the
    /// faulted main back and re-execute
    /// ([`RecoveryPolicy::Rollback`]).
    pub recovery: RecoveryPolicy,
    /// Reliability mode applied to every main slot.
    /// [`ReliabilityMode::SegmentCheck`] (the default) reproduces the
    /// pre-mode campaigns byte for byte; other modes trade detection
    /// latency against checkpoint overhead (`fig9_modes`).
    pub mode: ReliabilityMode,
}

impl CampaignConfig {
    /// The full campaign at `cores` cores (~1 200 armed shots). Chunks
    /// arm one shot per main core — more per chunk piles shots onto the
    /// same few-segment streams, where a segment's single failure
    /// verdict can consume only one of them (see `run_chunk`) — and
    /// the run count scales inversely so every core count fires a
    /// comparable campaign.
    pub fn at(cores: usize) -> Self {
        let checkers = (cores / 4).max(1);
        let mains = cores.saturating_sub(checkers).max(1);
        CampaignConfig {
            cores,
            cores_per_checker: 4,
            iters_per_main: 1_200,
            runs: 1_200usize.div_ceil(mains),
            shots_per_run: mains,
            seed: 0xF167 ^ cores as u64,
            recovery: RecoveryPolicy::Detect,
            mode: ReliabilityMode::SegmentCheck,
        }
    }

    /// The same campaign under a recovery policy (rollback campaigns
    /// report recovery-latency distributions alongside detection
    /// latency).
    #[must_use]
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// The same campaign with every main slot in the given reliability
    /// mode (the `fig9_modes` sweep axis).
    #[must_use]
    pub fn with_mode(mut self, mode: ReliabilityMode) -> Self {
        self.mode = mode;
        self
    }

    /// Reduced campaign for CI keep-alive runs (240 armed shots — still
    /// past the 200-shot artifact floor).
    pub fn quick(cores: usize) -> Self {
        let full = Self::at(cores);
        let shots_per_run = full.shots_per_run.min(30);
        CampaignConfig {
            iters_per_main: 600,
            runs: 240usize.div_ceil(shots_per_run),
            shots_per_run,
            ..full
        }
    }

    /// Total shots the campaign arms.
    pub fn armed(&self) -> usize {
        self.runs * self.shots_per_run
    }
}

/// Latency distribution and coverage of one checker pool (or one main).
#[derive(Debug, Clone)]
pub struct GroupStats {
    /// Core id of the group (checker core for pools, main core for
    /// mains).
    pub core: usize,
    /// Shots armed at streams this group serves.
    pub armed: usize,
    /// Shots that landed in those streams.
    pub landed: usize,
    /// Detections attributed one-to-one to a landed shot.
    pub detected: usize,
    /// Latency distribution over matched pairs, µs.
    pub stats: Option<LatencyStats>,
    /// Fig. 7 histogram of the matched-pair latencies.
    pub histogram: [u64; HISTOGRAM_BUCKETS],
}

impl GroupStats {
    fn from_latencies(
        core: usize,
        armed: usize,
        landed: usize,
        latencies_us: &[f64],
        latencies_cycles: &[u64],
        clock: Clock,
    ) -> Self {
        GroupStats {
            core,
            armed,
            landed,
            detected: latencies_us.len(),
            stats: LatencyStats::from_cycles(latencies_cycles, clock),
            histogram: latency_buckets(latencies_us),
        }
    }

    /// Renders the group as a JSON object.
    pub fn to_json(&self, key: &str) -> String {
        let mut o = JsonObject::new();
        o.field_u64(key, self.core as u64)
            .field_u64("armed", self.armed as u64)
            .field_u64("landed", self.landed as u64)
            .field_u64("detected", self.detected as u64);
        stats_fields(&mut o, &self.stats);
        o.field_raw(
            "histogram_8us",
            &numbers_u64(self.histogram.iter().copied()),
        );
        o.finish()
    }
}

fn stats_fields(o: &mut JsonObject, stats: &Option<LatencyStats>) {
    match stats {
        Some(s) => {
            o.field_f64("mean_us", s.mean_us)
                .field_f64("p50_us", s.p50_us)
                .field_f64("p99_us", s.p99_us)
                .field_f64("max_us", s.max_us);
        }
        None => {
            o.field_raw("mean_us", "null")
                .field_raw("p50_us", "null")
                .field_raw("p99_us", "null")
                .field_raw("max_us", "null");
        }
    }
}

/// One row of the many-core campaign (one core count).
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// Total cores simulated.
    pub cores: usize,
    /// Main cores.
    pub mains: usize,
    /// Shared checker cores (= pools).
    pub checkers: usize,
    /// Simulation chunks executed.
    pub runs: usize,
    /// Whether every chunk ran every main to completion.
    pub completed: bool,
    /// Shots armed across all chunks.
    pub armed: usize,
    /// Shots that landed in a stream.
    pub landed: usize,
    /// Armed shots that expired without landing.
    pub expired: usize,
    /// Detections attributed one-to-one to a landed shot.
    pub detected: usize,
    /// Whole-campaign latency distribution, µs.
    pub stats: Option<LatencyStats>,
    /// Raw matched-pair latencies, µs (for external plotting).
    pub latencies_us: Vec<f64>,
    /// Fig. 7 histogram over all matched pairs.
    pub histogram: [u64; HISTOGRAM_BUCKETS],
    /// Per-checker-pool distributions, pool order.
    pub per_pool: Vec<GroupStats>,
    /// Per-main distributions, channel order.
    pub per_main: Vec<GroupStats>,
    /// Raw detection events across all chunks (`recovered <=
    /// detections_raw`; a recovery window can span several detections).
    pub detections_raw: usize,
    /// Completed rollback recoveries (0 under [`RecoveryPolicy::Detect`]).
    pub recovered: usize,
    /// Detections that went unrecovered (retry budget exhausted).
    pub unrecovered: usize,
    /// Recovery-latency distribution (detect -> verified-again), µs.
    pub recovery_stats: Option<LatencyStats>,
    /// Raw recovery latencies, µs (for external plotting).
    pub recovery_latencies_us: Vec<f64>,
    /// Engine steps across all chunks.
    pub engine_steps: u64,
    /// Wall-clock seconds for the whole row.
    pub wall_s: f64,
}

impl CampaignRow {
    /// Detection coverage over shots that landed.
    pub fn coverage_landed(&self) -> f64 {
        if self.landed == 0 {
            0.0
        } else {
            self.detected as f64 / self.landed as f64
        }
    }

    /// Detection coverage over every armed shot (expired shots count
    /// against it — the conservative campaign-level number).
    pub fn coverage_armed(&self) -> f64 {
        if self.armed == 0 {
            0.0
        } else {
            self.detected as f64 / self.armed as f64
        }
    }

    /// Fraction of detected faults that recovered (rollback campaigns;
    /// 1.0 when nothing needed recovering).
    pub fn recovery_rate(&self) -> f64 {
        let total = self.recovered + self.unrecovered;
        if total == 0 {
            1.0
        } else {
            self.recovered as f64 / total as f64
        }
    }

    /// Renders the row as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("cores", self.cores as u64)
            .field_u64("mains", self.mains as u64)
            .field_u64("checkers", self.checkers as u64)
            .field_u64("runs", self.runs as u64)
            .field_bool("completed", self.completed)
            .field_u64("armed", self.armed as u64)
            .field_u64("landed", self.landed as u64)
            .field_u64("expired", self.expired as u64)
            .field_u64("detected", self.detected as u64)
            .field_f64("coverage_landed", self.coverage_landed())
            .field_f64("coverage_armed", self.coverage_armed());
        stats_fields(&mut o, &self.stats);
        o.field_raw("latencies_us", &numbers(self.latencies_us.iter().copied()))
            .field_raw(
                "histogram_8us",
                &numbers_u64(self.histogram.iter().copied()),
            )
            .field_raw(
                "per_pool",
                &array(self.per_pool.iter().map(|p| p.to_json("checker_core"))),
            )
            .field_raw(
                "per_main",
                &array(self.per_main.iter().map(|m| m.to_json("main_core"))),
            )
            .field_u64("detections_raw", self.detections_raw as u64)
            .field_u64("recovered", self.recovered as u64)
            .field_u64("unrecovered", self.unrecovered as u64)
            .field_f64("recovery_rate", self.recovery_rate());
        {
            let mut r = JsonObject::new();
            stats_fields(&mut r, &self.recovery_stats);
            o.field_raw("recovery_latency", &r.finish());
        }
        o.field_raw(
            "recovery_latencies_us",
            &numbers(self.recovery_latencies_us.iter().copied()),
        )
        .field_u64("engine_steps", self.engine_steps)
        .field_f64("wall_s", self.wall_s);
        o.finish()
    }
}

/// Outcome of one campaign chunk.
struct ChunkOutcome {
    completed: bool,
    engine_steps: u64,
    landed: usize,
    expired: usize,
    /// Channel (main slot) each armed shot targeted.
    armed_channels: Vec<usize>,
    /// Main slot of each landed injection.
    landed_mains: Vec<usize>,
    /// One-to-one (injection, detection) pairs.
    pairs: Vec<MatchedDetection>,
    /// Raw detection events (a recovery window can span several).
    detections: usize,
    /// Completed rollback recoveries (detect -> verified-again windows).
    recovered: usize,
    /// Detections left unrecovered (retry budget exhausted / no anchor).
    unrecovered: usize,
    /// Per-recovery detect -> verified-again latency, cycles.
    recovery_cycles: Vec<u64>,
}

/// Builds and runs one chunk: `shots_per_run` random shots at random
/// instants within the fault-free span, spread over channels drawn from
/// a shuffled deck (sampling without replacement until the deck
/// empties). Uniform channel draws would pile several shots onto one
/// main — and a short job is a *single* checking segment, whose one
/// failure verdict can only consume one injection — silently deflating
/// coverage with same-segment collisions instead of real misses.
fn run_chunk(
    cfg: &CampaignConfig,
    programs: &[Program],
    checkers: usize,
    horizon: u64,
    chunk: usize,
    trace: Option<&std::path::Path>,
) -> Result<ChunkOutcome, ScenarioError> {
    let chunk_seed = derive_stream(cfg.seed, &format!("chunk-{chunk}"));
    let mut rng = StdRng::seed_from_u64(chunk_seed);
    let mains = programs.len();
    let mut armed_channels = Vec::with_capacity(cfg.shots_per_run);
    let mut plan = FaultPlan::none().with_seed(rng.gen());
    let mut deck: Vec<usize> = Vec::new();
    for _ in 0..cfg.shots_per_run {
        if deck.is_empty() {
            deck = (0..mains).collect();
            deck.shuffle(&mut rng);
        }
        let at = rng.gen_range(horizon / 20..horizon);
        let channel = deck.pop().expect("deck refilled above");
        plan = plan.then_random_at(at).on_channel(channel);
        armed_channels.push(channel);
    }

    let mut scenario = Scenario::new(&programs[0])
        .cores(cfg.cores)
        .topology(Topology::SharedChecker { checkers })
        .fabric(FabricConfig::paper())
        .fault_plan(plan)
        .recovery(cfg.recovery)
        .main_reliability_mode(cfg.mode);
    if let Some(path) = trace {
        scenario = scenario.trace_to_bounded(path, flexstep_core::DEFAULT_RING_CAPACITY);
    }
    for p in &programs[1..] {
        scenario = scenario.program(p);
    }
    let mut run = scenario.build()?;
    let report = run.run_to_completion(u64::MAX);
    run.write_trace().expect("write schedule trace");
    let mut recovery_cycles = Vec::new();
    let mut unrecovered = 0usize;
    for m in &report.per_main {
        recovery_cycles.extend_from_slice(&m.recovery_latency_cycles);
        unrecovered += m.unrecovered as usize;
    }
    Ok(ChunkOutcome {
        completed: report.completed,
        engine_steps: report.engine_steps,
        landed: report.injections.len(),
        expired: report.shots_expired as usize,
        armed_channels,
        landed_mains: report.injections.iter().map(|i| i.main_core).collect(),
        pairs: report.matched_detections(),
        detections: report.detections.len(),
        recovered: recovery_cycles.len(),
        unrecovered,
        recovery_cycles,
    })
}

/// Builds the per-main workload programs for one configuration.
fn campaign_programs(cfg: &CampaignConfig, mains: usize) -> Vec<Program> {
    (0..mains)
        .map(|i| many_core_job(i as u64, cfg.iters_per_main))
        .collect()
}

/// Fault-free probe: measures the live span once so chunk RNGs draw
/// arming cycles over it (the Fig. 7 methodology; shots drawn past the
/// drain simply expire and land in the armed-only denominator).
fn fault_free_horizon(
    cfg: &CampaignConfig,
    programs: &[Program],
    checkers: usize,
) -> Result<u64, ScenarioError> {
    // The probe runs under the campaign's mode: the live span depends
    // on it (FullLockstep mains run far longer than Unchecked ones).
    let mut probe_scenario = Scenario::new(&programs[0])
        .cores(cfg.cores)
        .topology(Topology::SharedChecker { checkers })
        .fabric(FabricConfig::paper())
        .main_reliability_mode(cfg.mode);
    for p in &programs[1..] {
        probe_scenario = probe_scenario.program(p);
    }
    let mut probe = probe_scenario.build()?;
    let span = probe.run_to_completion(u64::MAX);
    Ok(span.main_finish_cycle.max(1_000))
}

/// The fault-free arming horizon for one configuration — the cycle
/// span chunk/shard RNGs draw injection instants over. Deterministic
/// for a given configuration, so a resumed `campaignd` campaign
/// recomputes exactly the horizon the interrupted run used.
///
/// # Errors
///
/// Returns a [`ScenarioError`] when the configuration is invalid.
pub fn probe_horizon(cfg: &CampaignConfig) -> Result<u64, ScenarioError> {
    let (mains, checkers) = checker_split(cfg.cores, cfg.cores_per_checker)?;
    let programs = campaign_programs(cfg, mains);
    fault_free_horizon(cfg, &programs, checkers)
}

/// Outcome of one campaign shard — the public form of a chunk outcome,
/// streamed by the `campaignd` engine into per-shard JSONL artifacts.
/// `detected <= landed <= armed` and `landed + expired == armed` hold
/// by construction.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Whether every main ran to completion.
    pub completed: bool,
    /// Engine steps the shard executed.
    pub engine_steps: u64,
    /// Shots the shard armed (`cfg.shots_per_run`).
    pub armed: usize,
    /// Shots that landed in a stream.
    pub landed: usize,
    /// Armed shots that expired without landing.
    pub expired: usize,
    /// One-to-one (injection, detection) pairs; `pairs.len()` is the
    /// shard's detected count.
    pub pairs: Vec<MatchedDetection>,
    /// Raw detection events (a recovery window can span several).
    pub detections: usize,
    /// Completed rollback recoveries.
    pub recovered: usize,
    /// Detections left unrecovered (retry budget exhausted).
    pub unrecovered: usize,
    /// Per-recovery detect -> verified-again latency, cycles.
    pub recovery_cycles: Vec<u64>,
}

/// Runs one shard of a campaign: shard `k` is exactly campaign chunk
/// `k` — same `derive_stream(seed, "chunk-k")` RNG stream, same
/// shuffled-deck channel assignment — so a sharded campaign aggregates
/// to the same totals as [`campaign_row`] over the same configuration.
/// `horizon` must come from [`probe_horizon`] for the same
/// configuration.
///
/// # Errors
///
/// Returns a [`ScenarioError`] when the configuration is invalid.
pub fn run_shard(
    cfg: &CampaignConfig,
    horizon: u64,
    shard: usize,
) -> Result<ShardOutcome, ScenarioError> {
    let (mains, checkers) = checker_split(cfg.cores, cfg.cores_per_checker)?;
    let programs = campaign_programs(cfg, mains);
    let o = run_chunk(cfg, &programs, checkers, horizon, shard, None)?;
    Ok(ShardOutcome {
        completed: o.completed,
        engine_steps: o.engine_steps,
        armed: o.armed_channels.len(),
        landed: o.landed,
        expired: o.expired,
        pairs: o.pairs,
        detections: o.detections,
        recovered: o.recovered,
        unrecovered: o.unrecovered,
        recovery_cycles: o.recovery_cycles,
    })
}

/// Runs the campaign at one configuration: `runs` chunks across scoped
/// threads, aggregated into per-pool and per-main distributions.
///
/// # Errors
///
/// Returns a [`ScenarioError`] when the configuration is invalid (e.g.
/// a `cores_per_checker` that leaves no main core).
pub fn campaign_row(cfg: &CampaignConfig) -> Result<CampaignRow, ScenarioError> {
    campaign_row_traced(cfg, None)
}

/// [`campaign_row`] with an optional Chrome-trace export: when `trace`
/// is given, chunk 0 of the campaign records a size-bounded schedule
/// trace ([`flexstep_core::trace`]) and writes it there. One chunk is
/// one full SoC run — exactly the timeline `chrome://tracing` can
/// render; tracing every chunk would just overwrite the same file from
/// `runs` threads.
///
/// # Errors
///
/// As [`campaign_row`].
///
/// # Panics
///
/// Panics if the trace file cannot be written.
pub fn campaign_row_traced(
    cfg: &CampaignConfig,
    trace: Option<&std::path::Path>,
) -> Result<CampaignRow, ScenarioError> {
    let (mains, checkers) = checker_split(cfg.cores, cfg.cores_per_checker)?;
    let programs = campaign_programs(cfg, mains);
    let start = Instant::now();
    let horizon = fault_free_horizon(cfg, &programs, checkers)?;

    // One chunk per scoped thread, spawned in waves bounded by the
    // machine's parallelism — a 100-chunk campaign must not hold 100
    // simulated SoCs in memory at once. Slots keep chunk order (and
    // every chunk derives its own RNG stream), so the aggregate is
    // independent of wave size and interleaving.
    let max_parallel = std::thread::available_parallelism().map_or(8, |n| n.get().max(2));
    let mut outcomes: Vec<Option<Result<ChunkOutcome, ScenarioError>>> = Vec::new();
    outcomes.resize_with(cfg.runs, || None);
    for (wave, batch) in outcomes.chunks_mut(max_parallel).enumerate() {
        std::thread::scope(|scope| {
            for (offset, slot) in batch.iter_mut().enumerate() {
                let programs = &programs;
                let chunk = wave * max_parallel + offset;
                let trace = if chunk == 0 { trace } else { None };
                scope.spawn(move || {
                    *slot = Some(run_chunk(cfg, programs, checkers, horizon, chunk, trace));
                });
            }
        });
    }

    let clock = Clock::paper();
    let mut completed = true;
    // Chunk steps only: the fault-free horizon probe is setup, not
    // campaign work.
    let mut engine_steps = 0u64;
    let (mut landed, mut expired) = (0usize, 0usize);
    let mut armed_per_pool = vec![0usize; checkers];
    let mut landed_per_pool = vec![0usize; checkers];
    let mut armed_per_main = vec![0usize; mains];
    let mut landed_per_main = vec![0usize; mains];
    let mut cycles_all: Vec<u64> = Vec::new();
    let mut cycles_per_pool: Vec<Vec<u64>> = vec![Vec::new(); checkers];
    let mut cycles_per_main: Vec<Vec<u64>> = vec![Vec::new(); mains];
    let mut armed = 0usize;
    let mut detections_raw = 0usize;
    let (mut recovered, mut unrecovered) = (0usize, 0usize);
    let mut recovery_cycles_all: Vec<u64> = Vec::new();
    for outcome in outcomes {
        let o = outcome.expect("all chunks computed")?;
        completed &= o.completed;
        engine_steps += o.engine_steps;
        detections_raw += o.detections;
        recovered += o.recovered;
        unrecovered += o.unrecovered;
        recovery_cycles_all.extend_from_slice(&o.recovery_cycles);
        armed += o.armed_channels.len();
        landed += o.landed;
        expired += o.expired;
        for &ch in &o.armed_channels {
            armed_per_main[ch] += 1;
            armed_per_pool[ch % checkers] += 1;
        }
        for &m in &o.landed_mains {
            landed_per_main[m] += 1;
            landed_per_pool[m % checkers] += 1;
        }
        for pair in &o.pairs {
            let lat = pair.latency_cycles();
            cycles_all.push(lat);
            cycles_per_main[pair.main_core].push(lat);
            // SharedChecker puts the pool at the top of the core range:
            // checker_core = mains + pool index.
            cycles_per_pool[pair.checker_core - mains].push(lat);
        }
    }

    let us =
        |cycles: &[u64]| -> Vec<f64> { cycles.iter().map(|&c| clock.cycles_to_us(c)).collect() };
    let latencies_us = us(&cycles_all);
    let per_pool = (0..checkers)
        .map(|p| {
            GroupStats::from_latencies(
                mains + p,
                armed_per_pool[p],
                landed_per_pool[p],
                &us(&cycles_per_pool[p]),
                &cycles_per_pool[p],
                clock,
            )
        })
        .collect();
    let per_main = (0..mains)
        .map(|m| {
            GroupStats::from_latencies(
                m,
                armed_per_main[m],
                landed_per_main[m],
                &us(&cycles_per_main[m]),
                &cycles_per_main[m],
                clock,
            )
        })
        .collect();
    Ok(CampaignRow {
        cores: cfg.cores,
        mains,
        checkers,
        runs: cfg.runs,
        completed,
        armed,
        landed,
        expired,
        detected: cycles_all.len(),
        stats: LatencyStats::from_cycles(&cycles_all, clock),
        histogram: latency_buckets(&latencies_us),
        latencies_us,
        per_pool,
        per_main,
        detections_raw,
        recovered,
        unrecovered,
        recovery_stats: LatencyStats::from_cycles(&recovery_cycles_all, clock),
        recovery_latencies_us: us(&recovery_cycles_all),
        engine_steps,
        wall_s: start.elapsed().as_secs_f64().max(1e-9),
    })
}

/// Runs the Fig. 7-style many-core campaign over the given core counts.
///
/// # Errors
///
/// Propagates the first invalid configuration.
pub fn fig7_manycore_sweep(
    core_counts: &[usize],
    quick: bool,
) -> Result<Vec<CampaignRow>, ScenarioError> {
    fig7_manycore_sweep_recovery(core_counts, quick, None, RecoveryPolicy::Detect)
}

/// [`fig7_manycore_sweep`] with an optional Chrome-trace export of the
/// first row's chunk 0 (see [`campaign_row_traced`]).
///
/// # Errors
///
/// Propagates the first invalid configuration.
pub fn fig7_manycore_sweep_traced(
    core_counts: &[usize],
    quick: bool,
    trace: Option<&std::path::Path>,
) -> Result<Vec<CampaignRow>, ScenarioError> {
    fig7_manycore_sweep_recovery(core_counts, quick, trace, RecoveryPolicy::Detect)
}

/// [`fig7_manycore_sweep_traced`] under an explicit recovery policy.
/// Under [`RecoveryPolicy::Rollback`] the rows additionally report
/// recovery counts and the detect → verified-again latency
/// distribution.
///
/// # Errors
///
/// Propagates the first invalid configuration.
pub fn fig7_manycore_sweep_recovery(
    core_counts: &[usize],
    quick: bool,
    trace: Option<&std::path::Path>,
    recovery: RecoveryPolicy,
) -> Result<Vec<CampaignRow>, ScenarioError> {
    core_counts
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let cfg = if quick {
                CampaignConfig::quick(n)
            } else {
                CampaignConfig::at(n)
            }
            .with_recovery(recovery);
            campaign_row_traced(&cfg, if i == 0 { trace } else { None })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the acceptance bar: a ≥64-core campaign with ≥200 armed
    /// shots where `detected <= landed <= armed` holds in every row,
    /// pool and main, and the per-pool splits partition the totals.
    #[test]
    fn quick_64_core_campaign_meets_the_fig7_bar() {
        let cfg = CampaignConfig::quick(64);
        assert!(
            cfg.armed() >= 200,
            "quick must stay past the 200-shot floor"
        );
        let row = campaign_row(&cfg).expect("valid configuration");
        assert!(row.completed, "every chunk must finish");
        assert_eq!(row.cores, 64);
        assert_eq!(row.mains, 48);
        assert_eq!(row.checkers, 16);
        assert_eq!(row.armed, cfg.armed());
        assert!(
            row.detected <= row.landed && row.landed <= row.armed,
            "detected <= landed <= armed must hold: {row:?}"
        );
        assert_eq!(row.landed + row.expired, row.armed);
        assert!(
            row.detected * 10 >= row.landed * 7,
            "most landed shots must be caught: {}/{}",
            row.detected,
            row.landed
        );
        assert!(row.coverage_armed() <= row.coverage_landed());

        // Pools partition the campaign totals.
        assert_eq!(row.per_pool.len(), 16);
        assert_eq!(row.per_main.len(), 48);
        assert_eq!(
            row.per_pool.iter().map(|p| p.armed).sum::<usize>(),
            row.armed
        );
        assert_eq!(
            row.per_pool.iter().map(|p| p.landed).sum::<usize>(),
            row.landed
        );
        assert_eq!(
            row.per_pool.iter().map(|p| p.detected).sum::<usize>(),
            row.detected
        );
        assert_eq!(
            row.per_main.iter().map(|m| m.detected).sum::<usize>(),
            row.detected
        );
        for p in &row.per_pool {
            assert!(
                p.detected <= p.landed && p.landed <= p.armed,
                "pool invariant: {p:?}"
            );
            assert_eq!(
                p.histogram.iter().sum::<u64>(),
                p.detected as u64,
                "pool histogram counts every matched pair"
            );
        }
        assert_eq!(row.histogram.iter().sum::<u64>(), row.detected as u64);
        let stats = row.stats.expect("a 240-shot campaign detects something");
        assert!(stats.mean_us > 0.0 && stats.max_us >= stats.p99_us);

        let json = row.to_json();
        assert!(json.contains("\"per_pool\": ["));
        assert!(json.contains("\"coverage_landed\": "));
        assert!(json.contains("\"histogram_8us\": ["));
    }

    /// Pins the PR 7 acceptance bar: a 64-core quick campaign run
    /// under `Rollback` recovers at least 99% of detected faults
    /// within the retry budget and reports a recovery-latency
    /// distribution in the JSON artifact.
    #[test]
    fn quick_64_core_rollback_campaign_recovers_detected_faults() {
        let cfg =
            CampaignConfig::quick(64).with_recovery(RecoveryPolicy::Rollback { max_retries: 3 });
        let row = campaign_row(&cfg).expect("valid configuration");
        assert!(row.completed, "every chunk must finish");
        assert!(
            row.detected <= row.landed && row.landed <= row.armed,
            "detected <= landed <= armed must hold: {row:?}"
        );
        assert!(
            row.recovered <= row.detections_raw,
            "recoveries consume detections: {}/{}",
            row.recovered,
            row.detections_raw
        );
        assert!(
            row.recovered > 0,
            "a 240-shot rollback campaign must recover something"
        );
        assert!(
            row.recovery_rate() >= 0.99,
            "at least 99% of detected faults must recover: rate {} ({} recovered, {} unrecovered)",
            row.recovery_rate(),
            row.recovered,
            row.unrecovered
        );
        let stats = row
            .recovery_stats
            .as_ref()
            .expect("recoveries produce a latency distribution");
        assert!(stats.mean_us > 0.0 && stats.max_us >= stats.p99_us);
        assert_eq!(row.recovery_latencies_us.len(), row.recovered);

        let json = row.to_json();
        assert!(json.contains("\"recovery_rate\": "));
        assert!(json.contains("\"recovery_latency\": {"));
        assert!(json.contains("\"recovery_latencies_us\": ["));
    }

    /// `Detect` campaigns keep the new fields pinned at zero so PR 6
    /// artifacts diff clean.
    #[test]
    fn detect_campaign_reports_zero_recovery_fields() {
        let cfg = CampaignConfig {
            cores: 8,
            cores_per_checker: 4,
            iters_per_main: 300,
            runs: 2,
            shots_per_run: 4,
            seed: 11,
            recovery: RecoveryPolicy::Detect,
            mode: ReliabilityMode::SegmentCheck,
        };
        let row = campaign_row(&cfg).unwrap();
        assert_eq!(row.recovered, 0);
        assert_eq!(row.unrecovered, 0);
        assert!(row.recovery_stats.is_none());
        assert!(row.recovery_latencies_us.is_empty());
        assert_eq!(row.recovery_rate(), 1.0);
    }

    #[test]
    fn campaign_rejects_checker_only_splits() {
        let cfg = CampaignConfig {
            cores_per_checker: 1,
            ..CampaignConfig::quick(16)
        };
        assert!(matches!(
            campaign_row(&cfg),
            Err(flexstep_core::ScenarioError::BadCheckerCount { .. })
        ));
    }

    #[test]
    fn campaign_is_deterministic_across_thread_interleavings() {
        // Two identical small campaigns must aggregate identically —
        // per-chunk RNG streams are derived, not shared.
        let cfg = CampaignConfig {
            cores: 8,
            cores_per_checker: 4,
            iters_per_main: 300,
            runs: 3,
            shots_per_run: 6,
            seed: 77,
            recovery: RecoveryPolicy::Detect,
            mode: ReliabilityMode::SegmentCheck,
        };
        let a = campaign_row(&cfg).unwrap();
        let b = campaign_row(&cfg).unwrap();
        assert_eq!(a.armed, b.armed);
        assert_eq!(a.landed, b.landed);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.histogram, b.histogram);
        assert_eq!(
            a.per_pool.iter().map(|p| p.detected).collect::<Vec<_>>(),
            b.per_pool.iter().map(|p| p.detected).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sharded_campaign_aggregates_to_the_row_totals() {
        // Shard k IS campaign chunk k: running the shards one by one
        // through the public API must reproduce the row totals, and
        // every shard must satisfy the artifact invariants on its own.
        let cfg = CampaignConfig {
            cores: 8,
            cores_per_checker: 4,
            iters_per_main: 300,
            runs: 3,
            shots_per_run: 6,
            seed: 77,
            recovery: RecoveryPolicy::Detect,
            mode: ReliabilityMode::SegmentCheck,
        };
        let row = campaign_row(&cfg).unwrap();
        let horizon = probe_horizon(&cfg).unwrap();
        let shards: Vec<ShardOutcome> = (0..cfg.runs)
            .map(|k| run_shard(&cfg, horizon, k).unwrap())
            .collect();
        assert_eq!(shards.iter().map(|s| s.armed).sum::<usize>(), row.armed);
        assert_eq!(shards.iter().map(|s| s.landed).sum::<usize>(), row.landed);
        assert_eq!(shards.iter().map(|s| s.expired).sum::<usize>(), row.expired);
        assert_eq!(
            shards.iter().map(|s| s.pairs.len()).sum::<usize>(),
            row.detected
        );
        for s in &shards {
            assert!(s.completed);
            assert!(s.pairs.len() <= s.landed && s.landed <= s.armed);
            assert_eq!(s.landed + s.expired, s.armed);
        }
    }

    #[test]
    fn latency_buckets_bins_and_saturates() {
        let buckets = latency_buckets(&[0.0, 7.9, 8.0, 16.1, 500.0]);
        assert_eq!(buckets[0], 2);
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[2], 1);
        assert_eq!(buckets[HISTOGRAM_BUCKETS - 1], 1, "tail bucket absorbs");
        assert_eq!(buckets.iter().sum::<u64>(), 5);
    }
}
