//! Interrupt/resume determinism (ISSUE 8 acceptance tests).
//!
//! The campaign engine's contract: a campaign killed at *any* point —
//! between shards, mid-shard, even `SIGKILL` mid-write — and resumed,
//! merges to the byte-identical artifact an uninterrupted run produces.
//! These tests drive that contract three ways:
//!
//! - exhaustively over every between-shard stop point (in process,
//!   via the `--max-shards` budget — the same code path a kill exercises,
//!   since shards are durable the instant they are renamed into place);
//! - property-based over random schedules of (budget, workers) resume
//!   legs;
//! - end-to-end over a real `SIGKILL` of the `campaignd` binary.

use flexstep_campaignd::{engine, JobSpec, RecoveryPolicy};
use proptest::prelude::*;
use std::path::PathBuf;

fn tiny_spec() -> JobSpec {
    JobSpec {
        name: "resume-test".into(),
        core_counts: vec![4],
        cores_per_checker: 4,
        iters_per_main: 150,
        shots_per_shard: 2,
        shards_per_config: 4,
        seed: 9,
        recovery: RecoveryPolicy::Detect,
        mode: flexstep_bench::ReliabilityMode::SegmentCheck,
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flexstep_resume_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the spec start-to-finish in one invocation and returns the
/// merged artifact's bytes.
fn uninterrupted_merge(spec: &JobSpec, tag: &str) -> String {
    let dir = fresh_dir(tag);
    engine::submit(&dir, spec).expect("submit");
    let summary = engine::run(&dir, 2, None).expect("run");
    assert_eq!(summary.remaining, 0);
    let out = engine::merged_path(&dir);
    engine::merge(&dir, &out).expect("merge");
    let bytes = std::fs::read_to_string(&out).expect("merged artifact");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

#[test]
fn every_between_shard_stop_point_resumes_to_identical_bytes() {
    let spec = tiny_spec();
    let reference = uninterrupted_merge(&spec, "stop_reference");
    for stop_after in 1..spec.total_shards() {
        let dir = fresh_dir(&format!("stop_{stop_after}"));
        engine::submit(&dir, &spec).expect("submit");
        // Hard stop after `stop_after` shards...
        let first = engine::run(&dir, 2, Some(stop_after)).expect("first leg");
        assert_eq!(first.ran, stop_after);
        // ...then resume (same code path as `campaignd resume`).
        let second = engine::run(&dir, 3, None).expect("resume leg");
        assert_eq!(second.skipped, stop_after);
        assert_eq!(second.remaining, 0);
        let out = engine::merged_path(&dir);
        engine::merge(&dir, &out).expect("merge");
        let merged = std::fs::read_to_string(&out).expect("merged artifact");
        assert_eq!(
            merged, reference,
            "stop after {stop_after} shards must merge byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn a_lost_checkpoint_is_recovered_from_the_shard_files() {
    let spec = tiny_spec();
    let reference = uninterrupted_merge(&spec, "lost_ckpt_reference");
    let dir = fresh_dir("lost_ckpt");
    engine::submit(&dir, &spec).expect("submit");
    engine::run(&dir, 1, Some(2)).expect("first leg");
    // Simulate a kill between the shard rename and the manifest store:
    // the manifest forgets everything, the shard files stay.
    std::fs::remove_file(dir.join("manifest.json")).expect("drop checkpoint");
    // And a kill mid-write of the next shard: torn tmp debris.
    std::fs::write(dir.join("shards").join("shard-0002.jsonl.tmp"), "{\"id\"").unwrap();
    let resumed = engine::run(&dir, 2, None).expect("resume leg");
    assert_eq!(
        resumed.skipped, 2,
        "orphan shards must be adopted, not redone"
    );
    let out = engine::merged_path(&dir);
    engine::merge(&dir, &out).expect("merge");
    assert_eq!(std::fs::read_to_string(&out).unwrap(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any schedule of resume legs — random budgets, random worker
    /// counts per leg — converges to the reference bytes.
    #[test]
    fn random_kill_schedules_converge_to_the_reference_artifact(
        legs in proptest::collection::vec((1usize..=3, 1usize..=3), 1..4),
        case in 0u32..1_000_000,
    ) {
        let spec = tiny_spec();
        // The reference is deterministic, so computing it per case is
        // pure overhead — but it also re-proves determinism 12 times.
        let reference = uninterrupted_merge(&spec, "prop_reference");
        let dir = fresh_dir(&format!("prop_{case}"));
        engine::submit(&dir, &spec).expect("submit");
        for &(budget, workers) in &legs {
            engine::run(&dir, workers, Some(budget)).expect("leg");
        }
        let last = engine::run(&dir, 2, None).expect("final leg");
        prop_assert_eq!(last.remaining, 0);
        let out = engine::merged_path(&dir);
        engine::merge(&dir, &out).expect("merge");
        let merged = std::fs::read_to_string(&out).expect("merged artifact");
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(merged, reference);
    }
}

/// End-to-end: `SIGKILL` the real binary mid-campaign, resume it with
/// the CLI, and the merge still matches the uninterrupted reference.
#[test]
fn sigkilled_campaignd_process_resumes_to_identical_bytes() {
    use std::process::Command;
    let bin = env!("CARGO_BIN_EXE_campaignd");
    let spec = tiny_spec();
    let reference = uninterrupted_merge(&spec, "sigkill_reference");

    let dir = fresh_dir("sigkill");
    let submit = |dir: &PathBuf| {
        let status = Command::new(bin)
            .args(["submit", "--dir"])
            .arg(dir)
            .args([
                "--cores", "4", "--iters", "150", "--shots", "2", "--shards", "4",
            ])
            .args(["--seed", "9", "--name", "resume-test"])
            .status()
            .expect("spawn campaignd submit");
        assert!(status.success());
    };
    submit(&dir);

    // Start draining, then SIGKILL the process. The child may win the
    // race and finish first on a fast machine — both outcomes must
    // merge identically, so no outcome is flaky.
    let mut child = Command::new(bin)
        .args(["run", "--dir"])
        .arg(&dir)
        .args(["--workers", "2"])
        .spawn()
        .expect("spawn campaignd run");
    std::thread::sleep(std::time::Duration::from_millis(120));
    let _ = child.kill(); // SIGKILL on unix
    let _ = child.wait();

    let resume = Command::new(bin)
        .args(["resume", "--dir"])
        .arg(&dir)
        .args(["--workers", "2"])
        .status()
        .expect("spawn campaignd resume");
    assert!(resume.success(), "resume after SIGKILL must succeed");

    let out = engine::merged_path(&dir);
    let merge = Command::new(bin)
        .args(["merge", "--dir"])
        .arg(&dir)
        .args(["--out"])
        .arg(&out)
        .status()
        .expect("spawn campaignd merge");
    assert!(merge.success(), "merge after resume must succeed");
    let merged = std::fs::read_to_string(&out).expect("merged artifact");
    assert_eq!(merged, reference, "SIGKILL + resume must be lossless");
    let _ = std::fs::remove_dir_all(&dir);
}
