//! Checkpointed campaign progress: the atomically-updated
//! `manifest.json` plus the crash-recovery scan that reconciles it with
//! the shard files actually on disk.
//!
//! Two write rules make a campaign killable at any instant:
//!
//! 1. Every durable file (shard artifact, manifest, merged artifact) is
//!    written to a `*.tmp` sibling and `rename`d into place — readers
//!    never observe a half-written file.
//! 2. A shard's artifact is renamed into place *before* the manifest
//!    records it done. A kill between the two leaves a finished shard
//!    the manifest doesn't know about; [`reconcile`] re-adopts it from
//!    the directory scan on the next invocation. The opposite order
//!    could record a shard that never hit the disk — unrecoverable.

use crate::error::CampaignError;
use flexstep_core::json::{self, JsonObject, JsonValue};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Manifest format version written to and required from
/// `manifest.json`.
pub const MANIFEST_VERSION: u64 = 1;

/// The set of finished shard ids, checkpointed after every shard.
/// Everything else (`in-flight`, `pending`) is derived: pending is the
/// spec's shard list minus `done`, and in-flight work is by design
/// *lost* on a kill — a shard is either durably finished or it never
/// happened.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    done: BTreeSet<usize>,
}

impl Manifest {
    /// An empty manifest (fresh campaign).
    pub fn new() -> Self {
        Self::default()
    }

    /// The finished shard ids, ascending.
    pub fn done(&self) -> &BTreeSet<usize> {
        &self.done
    }

    /// Whether shard `id` is durably finished.
    pub fn is_done(&self, id: usize) -> bool {
        self.done.contains(&id)
    }

    /// Records shard `id` as finished.
    pub fn mark_done(&mut self, id: usize) {
        self.done.insert(id);
    }

    /// Renders the `manifest.json` document. `done` serialises in
    /// ascending order, so equal progress states render byte-identical
    /// regardless of completion order.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("version", MANIFEST_VERSION).field_raw(
            "done",
            &json::numbers_u64(self.done.iter().map(|&id| id as u64)),
        );
        o.finish()
    }

    /// Parses a `manifest.json` document.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Spec`] on malformed JSON or a version
    /// mismatch.
    pub fn parse(input: &str) -> Result<Manifest, CampaignError> {
        let bad = |msg: String| CampaignError::Spec(msg);
        let doc = JsonValue::parse(input)
            .map_err(|e| bad(format!("manifest.json is not valid JSON: {e}")))?;
        let version = doc
            .get("version")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| bad("manifest.json: missing numeric \"version\"".into()))?;
        if version != MANIFEST_VERSION {
            return Err(bad(format!(
                "manifest.json: version {version} not supported \
                 (this build reads {MANIFEST_VERSION})"
            )));
        }
        let mut manifest = Manifest::new();
        for v in doc
            .get("done")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("manifest.json: missing array \"done\"".into()))?
        {
            let id = v
                .as_u64()
                .ok_or_else(|| bad("manifest.json: non-numeric shard id".into()))?;
            manifest.mark_done(id as usize);
        }
        Ok(manifest)
    }
}

/// `dir/manifest.json`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.json")
}

/// `dir/shards/` — one `shard-NNNN.jsonl` per finished shard.
pub fn shards_dir(dir: &Path) -> PathBuf {
    dir.join("shards")
}

/// `dir/shards/shard-NNNN.jsonl`.
pub fn shard_path(dir: &Path, id: usize) -> PathBuf {
    shards_dir(dir).join(format!("shard-{id:04}.jsonl"))
}

/// Writes `contents` to `path` atomically: a `*.tmp` sibling is written
/// and fsync'd shape-wise via close, then renamed over `path`. A kill
/// at any point leaves either the old file, no file, or the new file —
/// never a torn one.
///
/// # Errors
///
/// Returns [`CampaignError::Io`] naming the failing path.
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), CampaignError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, contents).map_err(|e| CampaignError::io(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| CampaignError::io(path, e))
}

/// Persists the manifest atomically.
///
/// # Errors
///
/// Returns [`CampaignError::Io`] on write failure.
pub fn store(dir: &Path, manifest: &Manifest) -> Result<(), CampaignError> {
    write_atomic(&manifest_path(dir), &(manifest.to_json() + "\n"))
}

/// Loads the manifest, or an empty one when none exists yet.
///
/// # Errors
///
/// Returns [`CampaignError::Io`] on read failure (other than absence)
/// or [`CampaignError::Spec`] on a malformed document.
pub fn load_or_default(dir: &Path) -> Result<Manifest, CampaignError> {
    let path = manifest_path(dir);
    match std::fs::read_to_string(&path) {
        Ok(text) => Manifest::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Manifest::new()),
        Err(e) => Err(CampaignError::io(&path, e)),
    }
}

/// Crash recovery: loads the manifest, adopts any complete shard file
/// the manifest missed (killed between rename and checkpoint), sweeps
/// `*.tmp` debris, and re-persists the reconciled manifest.
///
/// # Errors
///
/// Returns [`CampaignError::Io`] on directory or file I/O failure, or
/// [`CampaignError::Spec`] on a malformed manifest.
pub fn reconcile(dir: &Path, total_shards: usize) -> Result<Manifest, CampaignError> {
    let mut manifest = load_or_default(dir)?;
    let shards = shards_dir(dir);
    std::fs::create_dir_all(&shards).map_err(|e| CampaignError::io(&shards, e))?;
    let entries = std::fs::read_dir(&shards).map_err(|e| CampaignError::io(&shards, e))?;
    let mut adopted = false;
    for entry in entries {
        let entry = entry.map_err(|e| CampaignError::io(&shards, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".tmp") {
            // A torn write from a killed worker; the shard re-runs.
            std::fs::remove_file(entry.path()).map_err(|e| CampaignError::io(&entry.path(), e))?;
            continue;
        }
        if let Some(id) = name
            .strip_prefix("shard-")
            .and_then(|r| r.strip_suffix(".jsonl"))
            .and_then(|digits| digits.parse::<usize>().ok())
        {
            if id < total_shards && !manifest.is_done(id) {
                manifest.mark_done(id);
                adopted = true;
            }
        }
    }
    if adopted {
        store(dir, &manifest)?;
    }
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("flexstep_manifest_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_round_trips_and_renders_order_independently() {
        let mut a = Manifest::new();
        for id in [5, 1, 3] {
            a.mark_done(id);
        }
        let mut b = Manifest::new();
        for id in [3, 5, 1] {
            b.mark_done(id);
        }
        assert_eq!(a.to_json(), b.to_json(), "completion order must not leak");
        assert_eq!(Manifest::parse(&a.to_json()).unwrap(), a);
    }

    #[test]
    fn reconcile_adopts_orphan_shards_and_sweeps_tmp_files() {
        let dir = tmp_dir("reconcile");
        let mut manifest = Manifest::new();
        manifest.mark_done(0);
        store(&dir, &manifest).unwrap();
        std::fs::create_dir_all(shards_dir(&dir)).unwrap();
        // Shard 2 finished but the checkpoint was lost to a kill.
        std::fs::write(shard_path(&dir, 2), "{\"id\": 2}\n").unwrap();
        // Shard 3 was torn mid-write.
        let torn = shards_dir(&dir).join("shard-0003.jsonl.tmp");
        std::fs::write(&torn, "{\"id\"").unwrap();
        // A shard beyond the spec's range is ignored, not adopted.
        std::fs::write(shard_path(&dir, 9), "{\"id\": 9}\n").unwrap();

        let reconciled = reconcile(&dir, 4).unwrap();
        assert!(reconciled.is_done(0) && reconciled.is_done(2));
        assert!(!reconciled.is_done(3) && !reconciled.is_done(9));
        assert!(!torn.exists(), "tmp debris must be swept");
        // The adoption was persisted.
        assert_eq!(load_or_default(&dir).unwrap(), reconciled);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_defaults_to_empty_and_rejects_garbage() {
        let dir = tmp_dir("load");
        assert_eq!(load_or_default(&dir).unwrap(), Manifest::new());
        std::fs::write(manifest_path(&dir), "not json").unwrap();
        assert!(load_or_default(&dir).is_err());
        std::fs::write(manifest_path(&dir), "{\"version\": 9, \"done\": []}").unwrap();
        assert!(load_or_default(&dir).is_err(), "future versions rejected");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
