//! Persistent, versioned campaign job specs and their deterministic
//! shard expansion.
//!
//! A [`JobSpec`] is the durable description of a fault-injection
//! campaign: a grid of SoC sizes times a per-configuration shard count,
//! plus the workload scale, fault arming density, seed, and recovery
//! policy. It round-trips through `spec.json` (written once by
//! `campaignd submit`, re-read by every `run`/`resume`/`status`/`merge`
//! invocation) and expands into the same ordered [`Shard`] list every
//! time — the property resumability rests on.

use crate::error::CampaignError;
use flexstep_bench::campaign::CampaignConfig;
use flexstep_bench::{derive_stream, RecoveryPolicy, ReliabilityMode};
use flexstep_core::json::{self, JsonObject, JsonValue};

/// Spec format version written to and required from `spec.json`.
/// Bumped on any change to the shard expansion or outcome encoding —
/// a campaign directory is only resumable by the code revision that
/// understands its shards.
pub const SPEC_VERSION: u64 = 1;

/// The durable description of one campaign: everything needed to
/// regenerate the full shard list, byte-for-byte, on any host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Human-readable campaign name (artifact labelling only).
    pub name: String,
    /// SoC sizes to sweep (total cores per configuration).
    pub core_counts: Vec<usize>,
    /// Cores per shared checker (the §III-C pool ratio).
    pub cores_per_checker: usize,
    /// Loop iterations per main-core workload.
    pub iters_per_main: i64,
    /// Shots armed by each shard.
    pub shots_per_shard: usize,
    /// Shards per SoC configuration.
    pub shards_per_config: usize,
    /// Campaign seed. Configuration at `cores` cores runs on
    /// [`derive_stream(seed, "cores-{cores}")`](derive_stream); shard
    /// `k` of that configuration then draws from
    /// `derive_stream(config_seed, "chunk-{k}")` — exactly the
    /// [`campaign_row`](flexstep_bench::campaign::campaign_row) chunk
    /// streams, so a sharded campaign aggregates to the same totals.
    pub seed: u64,
    /// What a shard does on detection: record it, or roll the faulted
    /// main back and re-execute.
    pub recovery: RecoveryPolicy,
    /// Reliability mode every main slot runs at.
    /// [`ReliabilityMode::SegmentCheck`] reproduces pre-mode campaigns
    /// byte for byte; specs without a `"mode"` field parse as it, so
    /// existing campaign directories stay resumable.
    pub mode: ReliabilityMode,
}

/// One schedulable unit of campaign work. Shard outcomes are pure
/// functions of `(spec, id)`: the engine may run them in any order, on
/// any worker, across any number of interrupted invocations, and the
/// merged artifact comes out identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Global sequential id (position in [`JobSpec::shards`], also the
    /// artifact file number).
    pub id: usize,
    /// Total cores of this shard's SoC configuration.
    pub cores: usize,
    /// Chunk index within the configuration (selects the RNG stream).
    pub index: usize,
}

impl JobSpec {
    /// A small smoke-test campaign: one 8-core configuration, 12
    /// shards, 4 shots each — enough shards to exercise work stealing
    /// and interrupt/resume, small enough for CI.
    pub fn quick() -> Self {
        JobSpec {
            name: "quick".to_string(),
            core_counts: vec![8],
            cores_per_checker: 4,
            iters_per_main: 300,
            shots_per_shard: 4,
            shards_per_config: 12,
            seed: 2025,
            recovery: RecoveryPolicy::Detect,
            mode: ReliabilityMode::SegmentCheck,
        }
    }

    /// Rejects specs that cannot expand into at least one valid shard.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Spec`] naming the offending field.
    pub fn validate(&self) -> Result<(), CampaignError> {
        let bad = |msg: String| Err(CampaignError::Spec(msg));
        if self.core_counts.is_empty() {
            return bad("core_counts must name at least one SoC size".into());
        }
        if self.shards_per_config == 0 {
            return bad("shards_per_config must be at least 1".into());
        }
        if self.shots_per_shard == 0 {
            return bad("shots_per_shard must be at least 1".into());
        }
        if self.iters_per_main <= 0 {
            return bad(format!(
                "iters_per_main must be positive (got {})",
                self.iters_per_main
            ));
        }
        for &cores in &self.core_counts {
            if let Err(e) = flexstep_bench::manycore::checker_split(cores, self.cores_per_checker) {
                return bad(format!("core count {cores} is invalid: {e}"));
            }
        }
        Ok(())
    }

    /// Total shards the campaign expands into.
    pub fn total_shards(&self) -> usize {
        self.core_counts.len() * self.shards_per_config
    }

    /// The full ordered shard list. Deterministic: configuration order
    /// follows `core_counts`, shard ids are assigned sequentially.
    pub fn shards(&self) -> Vec<Shard> {
        let mut out = Vec::with_capacity(self.total_shards());
        for &cores in &self.core_counts {
            for index in 0..self.shards_per_config {
                out.push(Shard {
                    id: out.len(),
                    cores,
                    index,
                });
            }
        }
        out
    }

    /// The [`CampaignConfig`] for one SoC size of the grid. Each size
    /// gets a decorrelated seed stream so adding a configuration never
    /// perturbs another's shards.
    pub fn config_for(&self, cores: usize) -> CampaignConfig {
        CampaignConfig {
            cores,
            cores_per_checker: self.cores_per_checker,
            iters_per_main: self.iters_per_main,
            runs: self.shards_per_config,
            shots_per_run: self.shots_per_shard,
            seed: derive_stream(self.seed, &format!("cores-{cores}")),
            recovery: self.recovery,
            mode: self.mode,
        }
    }

    /// Renders the spec as the `spec.json` document.
    pub fn to_json(&self) -> String {
        let recovery = match self.recovery {
            RecoveryPolicy::Detect => "\"detect\"".to_string(),
            RecoveryPolicy::Rollback { max_retries } => {
                let mut o = JsonObject::new();
                o.field_u64("rollback", u64::from(max_retries));
                o.finish()
            }
            // `RecoveryPolicy` is non-exhaustive: a future policy must
            // get an encoding (and a SPEC_VERSION bump) before specs
            // can carry it.
            other => panic!("recovery policy {other:?} has no spec.json encoding"),
        };
        let mut o = JsonObject::new();
        o.field_u64("version", SPEC_VERSION)
            .field_str("name", &self.name)
            .field_raw(
                "core_counts",
                &json::numbers_u64(self.core_counts.iter().map(|&c| c as u64)),
            )
            .field_u64("cores_per_checker", self.cores_per_checker as u64)
            .field_i64("iters_per_main", self.iters_per_main)
            .field_u64("shots_per_shard", self.shots_per_shard as u64)
            .field_u64("shards_per_config", self.shards_per_config as u64)
            .field_u64("seed", self.seed)
            .field_raw("recovery", &recovery)
            .field_str("mode", self.mode.label());
        o.finish()
    }

    /// Parses a `spec.json` document.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Spec`] on malformed JSON, a missing or
    /// mistyped field, or a version this revision does not understand.
    pub fn parse(input: &str) -> Result<JobSpec, CampaignError> {
        let bad = |msg: String| CampaignError::Spec(msg);
        let doc = JsonValue::parse(input)
            .map_err(|e| bad(format!("spec.json is not valid JSON: {e}")))?;
        let version = doc
            .get("version")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| bad("spec.json: missing numeric \"version\"".into()))?;
        if version != SPEC_VERSION {
            return Err(bad(format!(
                "spec.json: version {version} not supported (this build reads {SPEC_VERSION})"
            )));
        }
        let str_field = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("spec.json: missing string \"{key}\"")))
        };
        let u64_field = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| bad(format!("spec.json: missing numeric \"{key}\"")))
        };
        let core_counts = doc
            .get("core_counts")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("spec.json: missing array \"core_counts\"".into()))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|c| c as usize)
                    .ok_or_else(|| bad("spec.json: non-numeric core count".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let recovery = match doc.get("recovery") {
            Some(v) if v.as_str() == Some("detect") => RecoveryPolicy::Detect,
            Some(v) => {
                let retries = v
                    .get("rollback")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| {
                        bad(
                            "spec.json: \"recovery\" must be \"detect\" or {\"rollback\": N}"
                                .into(),
                        )
                    })?;
                RecoveryPolicy::Rollback {
                    max_retries: u32::try_from(retries)
                        .map_err(|_| bad("spec.json: rollback retry count too large".into()))?,
                }
            }
            None => return Err(bad("spec.json: missing \"recovery\"".into())),
        };
        // Absent in pre-mode specs: default keeps those directories
        // resumable with unchanged shard outcomes.
        let mode = match doc.get("mode") {
            None => ReliabilityMode::SegmentCheck,
            Some(v) => v
                .as_str()
                .and_then(ReliabilityMode::from_label)
                .ok_or_else(
                    || bad("spec.json: \"mode\" must be a reliability-mode label".into()),
                )?,
        };
        let spec = JobSpec {
            name: str_field("name")?,
            core_counts,
            cores_per_checker: u64_field("cores_per_checker")? as usize,
            iters_per_main: doc
                .get("iters_per_main")
                .and_then(JsonValue::as_i64)
                .ok_or_else(|| bad("spec.json: missing numeric \"iters_per_main\"".into()))?,
            shots_per_shard: u64_field("shots_per_shard")? as usize,
            shards_per_config: u64_field("shards_per_config")? as usize,
            seed: u64_field("seed")?,
            recovery,
            mode,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rollback_spec() -> JobSpec {
        JobSpec {
            name: "grid".into(),
            core_counts: vec![8, 16],
            shards_per_config: 3,
            seed: u64::MAX - 1,
            recovery: RecoveryPolicy::Rollback { max_retries: 2 },
            ..JobSpec::quick()
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let lockstep = JobSpec {
            mode: ReliabilityMode::FullLockstep,
            ..JobSpec::quick()
        };
        for spec in [JobSpec::quick(), rollback_spec(), lockstep] {
            let parsed = JobSpec::parse(&spec.to_json()).expect("round trip");
            assert_eq!(parsed, spec);
        }
    }

    #[test]
    fn pre_mode_specs_parse_as_segment_check() {
        // A spec.json written before the "mode" field existed must stay
        // readable and expand to identical shards.
        let legacy = JobSpec::quick()
            .to_json()
            .replace(", \"mode\": \"segment_check\"", "");
        assert!(!legacy.contains("\"mode\""), "field stripped: {legacy}");
        let parsed = JobSpec::parse(&legacy).expect("legacy spec parses");
        assert_eq!(parsed, JobSpec::quick());
        assert!(JobSpec::parse(
            &JobSpec::quick()
                .to_json()
                .replace("\"segment_check\"", "\"lockstep\"")
        )
        .is_err());
    }

    #[test]
    fn shard_expansion_is_deterministic_and_sequential() {
        let spec = rollback_spec();
        let shards = spec.shards();
        assert_eq!(shards.len(), spec.total_shards());
        assert_eq!(shards.len(), 6);
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.id, i, "ids are the list positions");
        }
        assert_eq!(
            shards[0],
            Shard {
                id: 0,
                cores: 8,
                index: 0
            }
        );
        assert_eq!(
            shards[3],
            Shard {
                id: 3,
                cores: 16,
                index: 0
            }
        );
        assert_eq!(spec.shards(), shards, "expansion is a pure function");
    }

    #[test]
    fn per_config_seeds_are_decorrelated_chunk_streams() {
        let spec = rollback_spec();
        let c8 = spec.config_for(8);
        let c16 = spec.config_for(16);
        assert_ne!(c8.seed, c16.seed);
        assert_eq!(c8.seed, derive_stream(spec.seed, "cores-8"));
        assert_eq!(c8.runs, spec.shards_per_config);
        assert_eq!(c8.shots_per_run, spec.shots_per_shard);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "{}",
            "{\"version\": 99}",
            &JobSpec::quick()
                .to_json()
                .replace("\"recovery\": \"detect\"", "\"recovery\": 3"),
            &JobSpec {
                core_counts: vec![],
                ..JobSpec::quick()
            }
            .to_json(),
            &JobSpec {
                cores_per_checker: 1,
                ..JobSpec::quick()
            }
            .to_json(),
        ] {
            assert!(JobSpec::parse(bad).is_err(), "must reject: {bad}");
        }
    }
}
