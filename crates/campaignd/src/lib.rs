//! # flexstep-campaignd
//!
//! Resumable, work-stealing fault-injection campaign engine for the
//! FlexStep reproduction — the subsystem that turns the single-process
//! Fig. 7/Fig. 8 campaigns into long-running, interruptible jobs.
//!
//! A campaign is described once by a versioned [`JobSpec`] (a grid of
//! SoC sizes × shards × seeds × recovery policy), expanded into a
//! deterministic [`Shard`] list, and drained by a pool of work-stealing
//! workers ([`engine::run`]). Progress is checkpointed after every
//! shard (atomic `manifest.json` + one `shard-NNNN.jsonl` artifact per
//! shard), so the process can be killed — including `SIGKILL` — at any
//! instant and resumed to the *same* merged artifact, byte for byte:
//! shard outcomes are pure functions of `(spec, shard id)`, riding the
//! `Send`-able [`flexstep_core::harness::VerifiedRun`] and the same
//! `derive_stream` chunk seeding as
//! [`campaign_row`](flexstep_bench::campaign::campaign_row).
//!
//! The `campaignd` binary fronts the library:
//!
//! ```text
//! campaignd submit --dir d --quick      write spec.json
//! campaignd run    --dir d --workers 8  drain shards (resumable)
//! campaignd resume --dir d              alias of run
//! campaignd status --dir d              progress (total/done/pending)
//! campaignd merge  --dir d              shards -> merged.jsonl
//! campaignd bench  --out BENCH.json     worker-scaling measurement
//! ```
//!
//! ## Example
//!
//! ```
//! use flexstep_campaignd::{engine, JobSpec, RecoveryPolicy};
//!
//! let dir = std::env::temp_dir().join("flexstep_campaignd_doc");
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // A 2-shard campaign on a 4-core SoC.
//! let spec = JobSpec {
//!     name: "doc".into(),
//!     core_counts: vec![4],
//!     cores_per_checker: 4,
//!     iters_per_main: 200,
//!     shots_per_shard: 2,
//!     shards_per_config: 2,
//!     seed: 42,
//!     recovery: RecoveryPolicy::Detect,
//!     mode: flexstep_bench::ReliabilityMode::SegmentCheck,
//! };
//! engine::submit(&dir, &spec)?;
//!
//! // Run one shard, "crash", then resume: same merged bytes as an
//! // uninterrupted run.
//! engine::run(&dir, 2, Some(1))?;
//! let resumed = engine::run(&dir, 2, None)?;
//! assert_eq!(resumed.remaining, 0);
//! let shards = engine::merge(&dir, &engine::merged_path(&dir))?;
//! assert_eq!(shards, 2);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), flexstep_campaignd::CampaignError>(())
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod manifest;
pub mod spec;

pub use engine::{merge, run, status, submit, RunSummary, Status};
pub use error::CampaignError;
pub use flexstep_bench::RecoveryPolicy;
pub use manifest::Manifest;
pub use spec::{JobSpec, Shard, SPEC_VERSION};
