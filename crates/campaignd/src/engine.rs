//! The resumable work-stealing campaign engine.
//!
//! A campaign directory is the unit of state:
//!
//! ```text
//! <dir>/spec.json          the versioned job spec (written by submit)
//! <dir>/manifest.json      checkpointed progress ({version, done})
//! <dir>/shards/shard-NNNN.jsonl   one JSON line per finished shard
//! <dir>/merged.jsonl       the merge output (all shards, id order)
//! ```
//!
//! [`run`] expands the spec into its deterministic shard list, skips
//! everything the manifest already records, and drains the rest through
//! a pool of work-stealing workers: each worker owns a deque seeded
//! round-robin, pops its own front, and steals from the *back* of other
//! workers' deques when empty — the classic split that keeps owners and
//! thieves off the same end. Every finished shard is durably renamed
//! into place and checkpointed before the worker takes more work, so a
//! `SIGKILL` at any instant loses at most the shards in flight; a
//! subsequent [`run`] (resume is the same code path) redoes only those.
//!
//! Shard outcomes are pure functions of `(spec, shard id)` — the same
//! RNG streams as [`campaign_row`](flexstep_bench::campaign::campaign_row)
//! chunks — so the [`merge`] artifact is byte-identical no matter how
//! many times the campaign was killed, how many workers ran it, or in
//! what order shards finished.

use crate::error::CampaignError;
use crate::manifest;
use crate::spec::{JobSpec, Shard};
use flexstep_bench::campaign::{probe_horizon, run_shard, ShardOutcome};
use flexstep_core::json::{self, JsonObject};
use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// `dir/spec.json`.
pub fn spec_path(dir: &Path) -> PathBuf {
    dir.join("spec.json")
}

/// `dir/merged.jsonl` — the default [`merge`] destination.
pub fn merged_path(dir: &Path) -> PathBuf {
    dir.join("merged.jsonl")
}

/// Creates a campaign directory and persists the spec. Idempotent when
/// the directory already holds *the same* spec (resubmitting is a
/// no-op); refuses to overwrite a different campaign.
///
/// # Errors
///
/// Returns [`CampaignError::Spec`] for an invalid spec or a directory
/// already owned by a different campaign, or [`CampaignError::Io`] on
/// filesystem failure.
pub fn submit(dir: &Path, spec: &JobSpec) -> Result<(), CampaignError> {
    spec.validate()?;
    std::fs::create_dir_all(dir).map_err(|e| CampaignError::io(dir, e))?;
    let path = spec_path(dir);
    match std::fs::read_to_string(&path) {
        Ok(existing) => {
            if JobSpec::parse(&existing)? != *spec {
                return Err(CampaignError::Spec(format!(
                    "{} already holds a different campaign; pick a fresh --dir",
                    dir.display()
                )));
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            manifest::write_atomic(&path, &(spec.to_json() + "\n"))?;
        }
        Err(e) => return Err(CampaignError::io(&path, e)),
    }
    let shards = manifest::shards_dir(dir);
    std::fs::create_dir_all(&shards).map_err(|e| CampaignError::io(&shards, e))?;
    Ok(())
}

/// Loads the campaign's spec from `dir`.
///
/// # Errors
///
/// Returns [`CampaignError::Io`] when `spec.json` is unreadable (a
/// directory that was never submitted) or [`CampaignError::Spec`] when
/// it is malformed.
pub fn load_spec(dir: &Path) -> Result<JobSpec, CampaignError> {
    let path = spec_path(dir);
    let text = std::fs::read_to_string(&path).map_err(|e| CampaignError::io(&path, e))?;
    JobSpec::parse(&text)
}

/// What one [`run`] invocation accomplished.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Shards executed by this invocation.
    pub ran: usize,
    /// Shards the manifest already recorded (skipped).
    pub skipped: usize,
    /// Shards still pending when the invocation returned (non-zero
    /// only under `--max-shards`).
    pub remaining: usize,
    /// Engine steps this invocation simulated (excludes skipped shards
    /// and the horizon probes).
    pub engine_steps: u64,
    /// Wall-clock seconds spent draining shards (excludes probes).
    pub wall_s: f64,
}

/// Campaign progress, as `status` reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Status {
    /// Campaign name from the spec.
    pub name: String,
    /// Total shards the spec expands into.
    pub total: usize,
    /// Durably finished shards.
    pub done: usize,
}

impl Status {
    /// Shards not yet finished.
    pub fn pending(&self) -> usize {
        self.total - self.done
    }
}

/// Reads campaign progress (after crash-recovery reconciliation).
///
/// # Errors
///
/// As [`load_spec`], plus I/O failures scanning the shard directory.
pub fn status(dir: &Path) -> Result<Status, CampaignError> {
    let spec = load_spec(dir)?;
    let manifest = manifest::reconcile(dir, spec.total_shards())?;
    Ok(Status {
        name: spec.name.clone(),
        total: spec.total_shards(),
        done: manifest.done().len(),
    })
}

/// Renders one shard outcome as its single JSONL line. Field order and
/// formatting are fixed — the merged artifact's byte-identity depends
/// on it.
fn shard_line(shard: Shard, outcome: &ShardOutcome) -> String {
    let pairs = json::array(outcome.pairs.iter().map(|p| {
        let mut o = JsonObject::new();
        o.field_u64("main", p.main_core as u64)
            .field_u64("checker", p.checker_core as u64)
            .field_u64("injected_at", p.injected_at)
            .field_u64("detected_at", p.detected_at);
        o.finish()
    }));
    let mut o = JsonObject::new();
    o.field_u64("id", shard.id as u64)
        .field_u64("cores", shard.cores as u64)
        .field_u64("index", shard.index as u64)
        .field_bool("completed", outcome.completed)
        .field_u64("engine_steps", outcome.engine_steps)
        .field_u64("armed", outcome.armed as u64)
        .field_u64("landed", outcome.landed as u64)
        .field_u64("expired", outcome.expired as u64)
        .field_u64("detected", outcome.pairs.len() as u64)
        .field_u64("detections", outcome.detections as u64)
        .field_u64("recovered", outcome.recovered as u64)
        .field_u64("unrecovered", outcome.unrecovered as u64)
        .field_raw(
            "recovery_cycles",
            &json::numbers_u64(outcome.recovery_cycles.iter().copied()),
        )
        .field_raw("pairs", &pairs);
    o.finish()
}

/// Structural invariants every shard artifact must satisfy; violated
/// ones poison the campaign rather than the merged dataset.
fn check_outcome(shard: Shard, outcome: &ShardOutcome) -> Result<(), CampaignError> {
    let fail = |msg: String| {
        Err(CampaignError::Invariant(format!(
            "shard {} (cores {}, index {}): {msg}",
            shard.id, shard.cores, shard.index
        )))
    };
    if !outcome.completed {
        return fail("mains did not run to completion".into());
    }
    let detected = outcome.pairs.len();
    if !(detected <= outcome.landed && outcome.landed <= outcome.armed) {
        return fail(format!(
            "detected ({detected}) <= landed ({}) <= armed ({}) does not hold",
            outcome.landed, outcome.armed
        ));
    }
    if outcome.landed + outcome.expired != outcome.armed {
        return fail(format!(
            "landed ({}) + expired ({}) != armed ({})",
            outcome.landed, outcome.expired, outcome.armed
        ));
    }
    Ok(())
}

/// Runs (or resumes — same code path) the campaign in `dir` with
/// `workers` work-stealing workers, executing at most `max_shards`
/// shards when given (the interrupt/resume tests' hard-stop knob).
///
/// # Errors
///
/// Returns the first shard or checkpoint failure; already-checkpointed
/// shards stay durable, so a failed run resumes like a killed one.
///
/// # Panics
///
/// Panics if a worker thread itself panics (a bug, not an input
/// failure).
pub fn run(
    dir: &Path,
    workers: usize,
    max_shards: Option<usize>,
) -> Result<RunSummary, CampaignError> {
    let spec = load_spec(dir)?;
    let total = spec.total_shards();
    let manifest = manifest::reconcile(dir, total)?;
    let skipped = manifest.done().len();
    let pending: Vec<Shard> = spec
        .shards()
        .into_iter()
        .filter(|s| !manifest.is_done(s.id))
        .collect();

    // Arming horizons are per-configuration and deterministic; probing
    // them once up front (not per shard) keeps the workers saturated
    // with real campaign work.
    let mut horizons: BTreeMap<usize, u64> = BTreeMap::new();
    for shard in &pending {
        if let std::collections::btree_map::Entry::Vacant(slot) = horizons.entry(shard.cores) {
            slot.insert(probe_horizon(&spec.config_for(shard.cores))?);
        }
    }

    let workers = workers.max(1);
    // Round-robin seeding spreads each configuration's shards across
    // all deques, so even a single-configuration campaign parallelises
    // from the first instant.
    let queues: Vec<Mutex<VecDeque<Shard>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                pending
                    .iter()
                    .skip(w)
                    .step_by(workers)
                    .copied()
                    .collect::<VecDeque<_>>(),
            )
        })
        .collect();
    let budget = AtomicUsize::new(max_shards.unwrap_or(usize::MAX));
    let steps = AtomicU64::new(0);
    let ran = AtomicUsize::new(0);
    let failed: Mutex<Option<CampaignError>> = Mutex::new(None);
    let checkpoint = Mutex::new(manifest);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for me in 0..workers {
            let (spec, horizons, queues) = (&spec, &horizons, &queues);
            let (budget, steps, ran) = (&budget, &steps, &ran);
            let (failed, checkpoint) = (&failed, &checkpoint);
            scope.spawn(move || loop {
                if failed.lock().expect("error slot lock").is_some() {
                    return;
                }
                if budget
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
                    .is_err()
                {
                    return;
                }
                // Own work from the front; steal from the back of the
                // most loaded victim.
                let mut shard = queues[me].lock().expect("deque lock").pop_front();
                if shard.is_none() {
                    for offset in 1..workers {
                        let victim = (me + offset) % workers;
                        shard = queues[victim].lock().expect("deque lock").pop_back();
                        if shard.is_some() {
                            break;
                        }
                    }
                }
                let Some(shard) = shard else { return };
                let cfg = spec.config_for(shard.cores);
                let horizon = horizons[&shard.cores];
                let result = run_shard(&cfg, horizon, shard.index)
                    .map_err(CampaignError::from)
                    .and_then(|outcome| {
                        check_outcome(shard, &outcome)?;
                        manifest::write_atomic(
                            &manifest::shard_path(dir, shard.id),
                            &(shard_line(shard, &outcome) + "\n"),
                        )?;
                        // Checkpoint strictly after the shard file is
                        // durable (see crate::manifest's write rules).
                        let mut m = checkpoint.lock().expect("manifest lock");
                        m.mark_done(shard.id);
                        manifest::store(dir, &m)?;
                        Ok(outcome.engine_steps)
                    });
                match result {
                    Ok(shard_steps) => {
                        steps.fetch_add(shard_steps, Ordering::Relaxed);
                        ran.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        failed.lock().expect("error slot lock").get_or_insert(e);
                        return;
                    }
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();

    if let Some(e) = failed.into_inner().expect("error slot lock") {
        return Err(e);
    }
    let done = checkpoint.into_inner().expect("manifest lock").done().len();
    Ok(RunSummary {
        ran: ran.into_inner(),
        skipped,
        remaining: total - done,
        engine_steps: steps.into_inner(),
        wall_s,
    })
}

/// Concatenates every shard artifact in id order into `out`
/// (atomically). The result is byte-identical for a given spec no
/// matter how the campaign was scheduled, killed, or resumed.
///
/// # Errors
///
/// Returns [`CampaignError::Incomplete`] while shards are missing, or
/// the underlying I/O error.
pub fn merge(dir: &Path, out: &Path) -> Result<usize, CampaignError> {
    let spec = load_spec(dir)?;
    let total = spec.total_shards();
    let manifest = manifest::reconcile(dir, total)?;
    if manifest.done().len() < total {
        return Err(CampaignError::Incomplete {
            done: manifest.done().len(),
            total,
        });
    }
    let mut merged = String::new();
    for id in 0..total {
        let path = manifest::shard_path(dir, id);
        let line = std::fs::read_to_string(&path).map_err(|e| CampaignError::io(&path, e))?;
        merged.push_str(&line);
    }
    manifest::write_atomic(out, &merged)?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("flexstep_campaignd_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> JobSpec {
        JobSpec {
            name: "tiny".into(),
            core_counts: vec![4],
            cores_per_checker: 4,
            iters_per_main: 200,
            shots_per_shard: 2,
            shards_per_config: 3,
            seed: 7,
            recovery: flexstep_bench::RecoveryPolicy::Detect,
            mode: flexstep_bench::ReliabilityMode::SegmentCheck,
        }
    }

    #[test]
    fn submit_is_idempotent_but_guards_foreign_directories() {
        let dir = campaign_dir("submit");
        submit(&dir, &tiny_spec()).unwrap();
        submit(&dir, &tiny_spec()).unwrap();
        assert_eq!(load_spec(&dir).unwrap(), tiny_spec());
        let other = JobSpec {
            seed: 8,
            ..tiny_spec()
        };
        assert!(matches!(submit(&dir, &other), Err(CampaignError::Spec(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_refuses_an_incomplete_campaign() {
        let dir = campaign_dir("incomplete");
        submit(&dir, &tiny_spec()).unwrap();
        let summary = run(&dir, 2, Some(1)).unwrap();
        assert_eq!(summary.ran, 1);
        assert_eq!(summary.remaining, 2);
        match merge(&dir, &merged_path(&dir)) {
            Err(CampaignError::Incomplete { done: 1, total: 3 }) => {}
            other => panic!("expected Incomplete, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_then_status_then_merge_round_trip() {
        let dir = campaign_dir("roundtrip");
        submit(&dir, &tiny_spec()).unwrap();
        let summary = run(&dir, 2, None).unwrap();
        assert_eq!(summary.ran, 3);
        assert_eq!(summary.remaining, 0);
        assert!(summary.engine_steps > 0);
        let st = status(&dir).unwrap();
        assert_eq!((st.total, st.done, st.pending()), (3, 3, 0));
        // Re-running is a no-op.
        let again = run(&dir, 2, None).unwrap();
        assert_eq!((again.ran, again.skipped), (0, 3));

        let out = merged_path(&dir);
        assert_eq!(merge(&dir, &out).unwrap(), 3);
        let merged = std::fs::read_to_string(&out).unwrap();
        assert_eq!(merged.lines().count(), 3);
        for (i, line) in merged.lines().enumerate() {
            let doc = json::JsonValue::parse(line).expect("each line parses");
            assert_eq!(
                doc.get("id").and_then(json::JsonValue::as_u64),
                Some(i as u64)
            );
            let armed = doc.get("armed").and_then(json::JsonValue::as_u64).unwrap();
            let landed = doc.get("landed").and_then(json::JsonValue::as_u64).unwrap();
            let detected = doc
                .get("detected")
                .and_then(json::JsonValue::as_u64)
                .unwrap();
            let expired = doc
                .get("expired")
                .and_then(json::JsonValue::as_u64)
                .unwrap();
            assert!(detected <= landed && landed <= armed);
            assert_eq!(landed + expired, armed);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
