//! The campaign engine's failure surface.

/// Everything that can stop a campaign: bad specs, I/O on the campaign
/// directory, rejected scenario configurations, and violated outcome
/// invariants. The CLI renders these and exits non-zero; nothing in the
/// engine panics on user input.
#[derive(Debug)]
pub enum CampaignError {
    /// `spec.json` was malformed, unsupported, or semantically invalid.
    Spec(String),
    /// Reading or writing a campaign artifact failed.
    Io {
        /// Path of the file or directory involved.
        path: String,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// The simulator rejected a shard's scenario configuration.
    Scenario(flexstep_core::ScenarioError),
    /// A shard outcome violated a structural invariant
    /// (`detected <= landed <= armed`, `landed + expired == armed`).
    Invariant(String),
    /// An operation needed shards that have not been produced yet
    /// (e.g. `merge` before the campaign is complete).
    Incomplete {
        /// Shards finished so far.
        done: usize,
        /// Total shards the spec expands into.
        total: usize,
    },
}

impl CampaignError {
    /// Wraps an I/O error with the path it occurred on.
    pub fn io(path: &std::path::Path, source: std::io::Error) -> Self {
        CampaignError::Io {
            path: path.display().to_string(),
            source,
        }
    }
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Spec(msg) => write!(f, "bad job spec: {msg}"),
            CampaignError::Io { path, source } => write!(f, "{path}: {source}"),
            CampaignError::Scenario(e) => write!(f, "scenario rejected: {e}"),
            CampaignError::Invariant(msg) => write!(f, "shard invariant violated: {msg}"),
            CampaignError::Incomplete { done, total } => {
                write!(f, "campaign incomplete: {done}/{total} shards done")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io { source, .. } => Some(source),
            CampaignError::Scenario(e) => Some(e),
            _ => None,
        }
    }
}

impl From<flexstep_core::ScenarioError> for CampaignError {
    fn from(e: flexstep_core::ScenarioError) -> Self {
        CampaignError::Scenario(e)
    }
}

impl From<CampaignError> for flexstep_bench::BenchError {
    fn from(e: CampaignError) -> Self {
        match e {
            CampaignError::Io { path, source } => flexstep_bench::BenchError::Io { path, source },
            CampaignError::Scenario(s) => flexstep_bench::BenchError::Scenario(s),
            other => flexstep_bench::BenchError::Invariant(other.to_string()),
        }
    }
}
