//! `campaignd` — the resumable work-stealing campaign driver.
//!
//! ```text
//! campaignd submit --dir DIR [--quick] [--name S] [--cores 8,16]
//!                  [--shards N] [--shots N] [--iters N] [--seed N]
//!                  [--rollback N]          write DIR/spec.json
//! campaignd run    --dir DIR [--workers N] [--max-shards N]
//!                                          drain shards (resumable)
//! campaignd resume --dir DIR [--workers N] [--max-shards N]
//!                                          alias of run
//! campaignd status --dir DIR               progress: total/done/pending
//! campaignd merge  --dir DIR [--out PATH]  shards -> merged.jsonl
//! campaignd bench  [--dir DIR] [--out PATH] [--quick]
//!                                          worker-scaling measurement
//! ```
//!
//! `run` is killable at any instant — including `SIGKILL` — and a
//! subsequent `run`/`resume` redoes only the shards that were in
//! flight; the `merge` artifact comes out byte-identical either way.

use flexstep_bench::{arg_value, run_bin, write_artifact, BenchError};
use flexstep_campaignd::{engine, JobSpec, RecoveryPolicy};
use flexstep_core::json::{array, JsonObject};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: campaignd <submit|run|resume|status|merge|bench> [--dir DIR] ...";

fn main() -> ExitCode {
    run_bin(run)
}

fn run() -> Result<(), BenchError> {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("submit") => submit(&args),
        Some("run" | "resume") => drain(&args),
        Some("status") => status(&args),
        Some("merge") => merge(&args),
        Some("bench") => bench(&args),
        _ => Err(BenchError::Config(USAGE.into())),
    }
}

fn dir_arg(args: &[String]) -> Result<PathBuf, BenchError> {
    arg_value(args, "--dir")
        .map(PathBuf::from)
        .ok_or_else(|| BenchError::Config(format!("--dir is required; {USAGE}")))
}

fn num_arg<T: std::str::FromStr>(args: &[String], key: &str) -> Result<Option<T>, BenchError> {
    arg_value(args, key)
        .map(|v| {
            v.parse()
                .map_err(|_| BenchError::Config(format!("{key} expects a number, got {v:?}")))
        })
        .transpose()
}

fn all_workers() -> usize {
    std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
}

fn submit(args: &[String]) -> Result<(), BenchError> {
    let dir = dir_arg(args)?;
    let mut spec = JobSpec::quick();
    if let Some(name) = arg_value(args, "--name") {
        spec.name = name;
    }
    if let Some(list) = arg_value(args, "--cores") {
        spec.core_counts = list
            .split(',')
            .map(|c| {
                c.trim().parse().map_err(|_| {
                    BenchError::Config(format!("--cores expects numbers like 8,16 — got {c:?}"))
                })
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(n) = num_arg(args, "--shards")? {
        spec.shards_per_config = n;
    }
    if let Some(n) = num_arg(args, "--shots")? {
        spec.shots_per_shard = n;
    }
    if let Some(n) = num_arg(args, "--iters")? {
        spec.iters_per_main = n;
    }
    if let Some(n) = num_arg(args, "--seed")? {
        spec.seed = n;
    }
    if let Some(n) = num_arg(args, "--rollback")? {
        spec.recovery = RecoveryPolicy::Rollback { max_retries: n };
    }
    engine::submit(&dir, &spec)?;
    println!(
        "submitted {:?}: {} shards ({} configs x {}) -> {}",
        spec.name,
        spec.total_shards(),
        spec.core_counts.len(),
        spec.shards_per_config,
        dir.display()
    );
    Ok(())
}

fn drain(args: &[String]) -> Result<(), BenchError> {
    let dir = dir_arg(args)?;
    let workers = num_arg(args, "--workers")?.unwrap_or_else(all_workers);
    let max_shards = num_arg(args, "--max-shards")?;
    let summary = engine::run(&dir, workers, max_shards)?;
    println!(
        "ran {} shards on {} workers ({} already done, {} remaining) — \
         {} engine steps in {:.2} s ({:.0} steps/s)",
        summary.ran,
        workers,
        summary.skipped,
        summary.remaining,
        summary.engine_steps,
        summary.wall_s,
        summary.engine_steps as f64 / summary.wall_s.max(1e-9),
    );
    Ok(())
}

fn status(args: &[String]) -> Result<(), BenchError> {
    let dir = dir_arg(args)?;
    let st = engine::status(&dir)?;
    println!(
        "campaign {:?}: {}/{} shards done, {} pending",
        st.name,
        st.done,
        st.total,
        st.pending()
    );
    Ok(())
}

fn merge(args: &[String]) -> Result<(), BenchError> {
    let dir = dir_arg(args)?;
    let out = arg_value(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| engine::merged_path(&dir));
    let shards = engine::merge(&dir, &out)?;
    println!("merged {} shards -> {}", shards, out.display());
    Ok(())
}

/// Worker-scaling measurement: the same quick campaign drained with 1,
/// 4, and all-core worker pools, each in a fresh directory, reported as
/// aggregate engine steps per second.
fn bench(args: &[String]) -> Result<(), BenchError> {
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = arg_value(args, "--out").unwrap_or_else(|| "BENCH_pr8.json".into());
    let base = arg_value(args, "--dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("flexstep_campaignd_bench"));
    let spec = JobSpec {
        name: "bench".into(),
        shards_per_config: if quick { 12 } else { 32 },
        iters_per_main: if quick { 300 } else { 600 },
        ..JobSpec::quick()
    };

    let all = all_workers();
    let mut ladder = vec![1, 4.min(all), all];
    ladder.dedup();

    println!(
        "campaignd worker scaling — {} shards per rung",
        spec.total_shards()
    );
    println!(
        "{:>8} {:>8} {:>14} {:>9} {:>14}",
        "workers", "shards", "engine steps", "wall s", "steps/s"
    );
    let mut rows = Vec::new();
    let mut rates = Vec::new();
    for &workers in &ladder {
        let dir = base.join(format!("w{workers}"));
        // Each rung re-runs the campaign from scratch.
        if dir.exists() {
            std::fs::remove_dir_all(&dir).map_err(|e| BenchError::Io {
                path: dir.display().to_string(),
                source: e,
            })?;
        }
        engine::submit(&dir, &spec)?;
        let summary = engine::run(&dir, workers, None)?;
        if summary.remaining != 0 {
            return Err(BenchError::Invariant(format!(
                "bench rung at {workers} workers left {} shards pending",
                summary.remaining
            )));
        }
        let rate = summary.engine_steps as f64 / summary.wall_s.max(1e-9);
        println!(
            "{:>8} {:>8} {:>14} {:>9.2} {:>14.0}",
            workers, summary.ran, summary.engine_steps, summary.wall_s, rate
        );
        let mut row = JsonObject::new();
        row.field_u64("workers", workers as u64)
            .field_u64("shards", summary.ran as u64)
            .field_u64("engine_steps", summary.engine_steps)
            .field_f64("wall_s", summary.wall_s)
            .field_f64("steps_per_sec", rate);
        rows.push(row.finish());
        rates.push(rate);
    }
    let speedup = match (rates.first(), rates.last()) {
        (Some(&one), Some(&full)) if one > 0.0 => full / one,
        _ => 0.0,
    };
    println!("speedup {all} workers vs 1: {speedup:.2}x");

    let mut meta = JsonObject::new();
    meta.field_str("tool", "campaignd")
        .field_str("mode", "bench")
        .field_bool("quick", quick)
        .field_u64("host_cores", all as u64);
    let mut out = JsonObject::new();
    out.field_raw("meta", &meta.finish())
        .field_raw("rows", &array(&rows))
        .field_f64("speedup_all_vs_1", speedup);
    write_artifact(&out_path, &out.finish())?;
    println!("wrote {out_path}");
    Ok(())
}
