//! Property tests: `decode(encode(i)) == i` for every encodable instruction,
//! and `encode ∘ decode` is idempotent on arbitrary words.

use flexstep_isa::decode::decode;
use flexstep_isa::encode::encode;
use flexstep_isa::inst::*;
use flexstep_isa::reg::{FReg, XReg};
use proptest::prelude::*;

fn xreg() -> impl Strategy<Value = XReg> {
    (0u32..32).prop_map(XReg::of)
}

fn freg() -> impl Strategy<Value = FReg> {
    (0u32..32).prop_map(FReg::of)
}

fn imm12() -> impl Strategy<Value = i64> {
    -2048i64..=2047
}

fn branch_offset() -> impl Strategy<Value = i64> {
    (-2048i64..=2047).prop_map(|v| v * 2)
}

fn jal_offset() -> impl Strategy<Value = i64> {
    (-(1i64 << 19)..(1i64 << 19)).prop_map(|v| v * 2)
}

fn upper_imm() -> impl Strategy<Value = i64> {
    (-(1i64 << 19)..(1i64 << 19)).prop_map(|v| v << 12)
}

prop_compose! {
    fn branch_op()(d in 0usize..6) -> BranchOp {
        [BranchOp::Eq, BranchOp::Ne, BranchOp::Lt, BranchOp::Ge, BranchOp::Ltu, BranchOp::Geu][d]
    }
}

prop_compose! {
    fn load_op()(d in 0usize..7) -> LoadOp {
        [LoadOp::Lb, LoadOp::Lh, LoadOp::Lw, LoadOp::Ld, LoadOp::Lbu, LoadOp::Lhu, LoadOp::Lwu][d]
    }
}

prop_compose! {
    fn store_op()(d in 0usize..4) -> StoreOp {
        [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw, StoreOp::Sd][d]
    }
}

prop_compose! {
    fn int_op()(d in 0usize..18) -> IntOp {
        [
            IntOp::Add, IntOp::Sub, IntOp::Sll, IntOp::Slt, IntOp::Sltu, IntOp::Xor,
            IntOp::Srl, IntOp::Sra, IntOp::Or, IntOp::And, IntOp::Mul, IntOp::Mulh,
            IntOp::Mulhsu, IntOp::Mulhu, IntOp::Div, IntOp::Divu, IntOp::Rem, IntOp::Remu,
        ][d]
    }
}

prop_compose! {
    fn int_w_op()(d in 0usize..10) -> IntWOp {
        [
            IntWOp::Addw, IntWOp::Subw, IntWOp::Sllw, IntWOp::Srlw, IntWOp::Sraw,
            IntWOp::Mulw, IntWOp::Divw, IntWOp::Divuw, IntWOp::Remw, IntWOp::Remuw,
        ][d]
    }
}

prop_compose! {
    fn amo_op()(d in 0usize..9) -> AmoOp {
        [
            AmoOp::Swap, AmoOp::Add, AmoOp::Xor, AmoOp::And, AmoOp::Or,
            AmoOp::Min, AmoOp::Max, AmoOp::Minu, AmoOp::Maxu,
        ][d]
    }
}

prop_compose! {
    fn amo_width()(d in 0usize..2) -> AmoWidth {
        [AmoWidth::W, AmoWidth::D][d]
    }
}

prop_compose! {
    fn fp_op()(d in 0usize..9) -> FpOp {
        [
            FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Div, FpOp::SgnJ,
            FpOp::SgnJN, FpOp::SgnJX, FpOp::Min, FpOp::Max,
        ][d]
    }
}

prop_compose! {
    fn fma_op()(d in 0usize..4) -> FmaOp {
        [FmaOp::Madd, FmaOp::Msub, FmaOp::Nmsub, FmaOp::Nmadd][d]
    }
}

prop_compose! {
    fn fp_cmp_op()(d in 0usize..3) -> FpCmpOp {
        [FpCmpOp::Eq, FpCmpOp::Lt, FpCmpOp::Le][d]
    }
}

prop_compose! {
    fn fp_cvt_op()(d in 0usize..6) -> FpCvtOp {
        [
            FpCvtOp::DToL, FpCvtOp::DToLu, FpCvtOp::LToD,
            FpCvtOp::LuToD, FpCvtOp::DToW, FpCvtOp::WToD,
        ][d]
    }
}

prop_compose! {
    fn flex_op()(d in 0usize..9) -> FlexOp {
        FlexOp::ALL[d]
    }
}

prop_compose! {
    fn csr_op()(d in 0usize..6) -> CsrOp {
        [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc, CsrOp::Rwi, CsrOp::Rsi, CsrOp::Rci][d]
    }
}

/// A strategy over every encodable instruction with in-range operands.
fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (xreg(), upper_imm()).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (xreg(), upper_imm()).prop_map(|(rd, imm)| Inst::Auipc { rd, imm }),
        (xreg(), jal_offset()).prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (xreg(), xreg(), imm12()).prop_map(|(rd, rs1, offset)| Inst::Jalr { rd, rs1, offset }),
        (branch_op(), xreg(), xreg(), branch_offset()).prop_map(|(op, rs1, rs2, offset)| {
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            }
        }),
        (load_op(), xreg(), xreg(), imm12()).prop_map(|(op, rd, rs1, offset)| Inst::Load {
            op,
            rd,
            rs1,
            offset
        }),
        (store_op(), xreg(), xreg(), imm12()).prop_map(|(op, rs1, rs2, offset)| Inst::Store {
            op,
            rs1,
            rs2,
            offset
        }),
        (xreg(), xreg(), imm12()).prop_map(|(rd, rs1, imm)| Inst::OpImm {
            op: IntImmOp::Addi,
            rd,
            rs1,
            imm
        }),
        (xreg(), xreg(), 0i64..64).prop_map(|(rd, rs1, imm)| Inst::OpImm {
            op: IntImmOp::Srai,
            rd,
            rs1,
            imm
        }),
        (int_op(), xreg(), xreg(), xreg()).prop_map(|(op, rd, rs1, rs2)| Inst::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        (xreg(), xreg(), imm12()).prop_map(|(rd, rs1, imm)| Inst::OpImmW {
            op: IntImmWOp::Addiw,
            rd,
            rs1,
            imm
        }),
        (xreg(), xreg(), 0i64..32).prop_map(|(rd, rs1, imm)| Inst::OpImmW {
            op: IntImmWOp::Sraiw,
            rd,
            rs1,
            imm
        }),
        (int_w_op(), xreg(), xreg(), xreg()).prop_map(|(op, rd, rs1, rs2)| Inst::OpW {
            op,
            rd,
            rs1,
            rs2
        }),
        (amo_width(), xreg(), xreg()).prop_map(|(width, rd, rs1)| Inst::Lr { width, rd, rs1 }),
        (amo_width(), xreg(), xreg(), xreg()).prop_map(|(width, rd, rs1, rs2)| Inst::Sc {
            width,
            rd,
            rs1,
            rs2
        }),
        (amo_op(), amo_width(), xreg(), xreg(), xreg()).prop_map(|(op, width, rd, rs1, rs2)| {
            Inst::Amo {
                op,
                width,
                rd,
                rs1,
                rs2,
            }
        }),
        (
            csr_op(),
            xreg(),
            0u32..32,
            any::<u16>().prop_map(|c| c & 0xFFF)
        )
            .prop_map(|(op, rd, src, csr)| Inst::Csr { op, rd, src, csr }),
        (freg(), xreg(), imm12()).prop_map(|(rd, rs1, offset)| Inst::Fld { rd, rs1, offset }),
        (xreg(), freg(), imm12()).prop_map(|(rs1, rs2, offset)| Inst::Fsd { rs1, rs2, offset }),
        (fp_op(), freg(), freg(), freg()).prop_map(|(op, rd, rs1, rs2)| Inst::Fp {
            op,
            rd,
            rs1,
            rs2
        }),
        (freg(), freg()).prop_map(|(rd, rs1)| Inst::FpSqrt { rd, rs1 }),
        (fma_op(), freg(), freg(), freg(), freg()).prop_map(|(op, rd, rs1, rs2, rs3)| Inst::Fma {
            op,
            rd,
            rs1,
            rs2,
            rs3
        }),
        (fp_cmp_op(), xreg(), freg(), freg()).prop_map(|(op, rd, rs1, rs2)| Inst::FpCmp {
            op,
            rd,
            rs1,
            rs2
        }),
        (fp_cvt_op(), 0u32..32, 0u32..32).prop_map(|(op, rd, rs1)| Inst::FpCvt { op, rd, rs1 }),
        (xreg(), freg()).prop_map(|(rd, rs1)| Inst::FmvXD { rd, rs1 }),
        (freg(), xreg()).prop_map(|(rd, rs1)| Inst::FmvDX { rd, rs1 }),
        Just(Inst::Fence),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        Just(Inst::Mret),
        Just(Inst::Wfi),
        (flex_op(), xreg(), xreg(), xreg()).prop_map(|(op, rd, rs1, rs2)| Inst::Flex {
            op,
            rd,
            rs1,
            rs2
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    /// Every instruction with in-range operands encodes, and decoding the
    /// word recovers the identical instruction.
    #[test]
    fn encode_decode_roundtrip(i in inst()) {
        let word = encode(&i).expect("strategy only builds encodable instructions");
        let back = decode(word).expect("canonical words must decode");
        prop_assert_eq!(back, i);
    }

    /// `encode ∘ decode` is idempotent: any word that decodes at all
    /// re-encodes to a word that decodes to the same instruction.
    #[test]
    fn decode_encode_idempotent(word in any::<u32>()) {
        if let Ok(i) = decode(word) {
            let canon = encode(&i).expect("decoded instructions must re-encode");
            let again = decode(canon).expect("canonical words must decode");
            prop_assert_eq!(again, i);
        }
    }

    /// Disassembly never panics and is never empty.
    #[test]
    fn disassembly_total(i in inst()) {
        let text = i.to_string();
        prop_assert!(!text.is_empty());
    }
}
