//! # flexstep-isa
//!
//! Instruction-set model for the FlexStep platform: the RV64IMA base ISA
//! (plus the double-precision floating-point subset the evaluated Rocket
//! configuration provides), a two-pass assembler for building guest
//! programs, and the nine FlexStep custom instructions of Tab. I of the
//! paper *"FlexStep: Enabling Flexible Error Detection in Multi/Many-core
//! Real-time Systems"* (DAC 2025).
//!
//! This crate is pure data and codecs — execution semantics live in
//! `flexstep-sim`, and the FlexStep error-detection machinery the custom
//! instructions control lives in `flexstep-core`.
//!
//! ## Example
//!
//! ```
//! use flexstep_isa::asm::Assembler;
//! use flexstep_isa::decode::decode;
//! use flexstep_isa::reg::XReg;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Sum the integers 1..=10, then yield to the kernel.
//! let mut asm = Assembler::new("sum");
//! asm.li(XReg::A0, 0); // acc
//! asm.li(XReg::A1, 10); // i
//! asm.label("loop")?;
//! asm.add(XReg::A0, XReg::A0, XReg::A1);
//! asm.addi(XReg::A1, XReg::A1, -1);
//! asm.bnez(XReg::A1, "loop");
//! asm.ecall();
//! let program = asm.finish()?;
//!
//! // Every emitted word decodes back to a well-formed instruction.
//! for &word in &program.text {
//!     decode(word)?;
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod csr;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod inst;
pub mod reg;

pub use asm::{Assembler, Program};
pub use decode::{decode, DecodeError};
pub use encode::{encode, EncodeError};
pub use inst::{Inst, InstClass};
pub use reg::{FReg, XReg};
