//! Instruction decoding from 32-bit RISC-V words.
//!
//! [`decode`] is the exact inverse of [`encode`] for every canonical word;
//! non-canonical but architecturally equivalent words (e.g. FP arithmetic
//! with a static rounding mode, or AMOs with `aq`/`rl` set) decode to the
//! same [`Inst`] value, so `encode ∘ decode` is idempotent.
//!
//! [`encode`]: crate::encode::encode

use crate::encode::*;
use crate::inst::*;
use crate::reg::{FReg, XReg};
use std::fmt;

/// Error produced for words that are not valid instructions on this
/// platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
    /// The program counter of the fetch, when known (zero otherwise).
    pub pc: u64,
}

impl DecodeError {
    fn new(word: u32) -> Self {
        DecodeError { word, pc: 0 }
    }

    /// Attaches a program counter to the error for diagnostics.
    pub fn at(mut self, pc: u64) -> Self {
        self.pc = pc;
        self
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal instruction word {:#010x} at pc {:#x}",
            self.word, self.pc
        )
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn opcode(w: u32) -> u32 {
    w & 0x7F
}
#[inline]
fn rd(w: u32) -> u32 {
    (w >> 7) & 0x1F
}
#[inline]
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
#[inline]
fn rs1(w: u32) -> u32 {
    (w >> 15) & 0x1F
}
#[inline]
fn rs2(w: u32) -> u32 {
    (w >> 20) & 0x1F
}
#[inline]
fn funct7(w: u32) -> u32 {
    w >> 25
}
#[inline]
fn xrd(w: u32) -> XReg {
    XReg::of(rd(w))
}
#[inline]
fn xrs1(w: u32) -> XReg {
    XReg::of(rs1(w))
}
#[inline]
fn xrs2(w: u32) -> XReg {
    XReg::of(rs2(w))
}
#[inline]
fn frd(w: u32) -> FReg {
    FReg::of(rd(w))
}
#[inline]
fn frs1(w: u32) -> FReg {
    FReg::of(rs1(w))
}
#[inline]
fn frs2(w: u32) -> FReg {
    FReg::of(rs2(w))
}

#[inline]
fn imm_i(w: u32) -> i64 {
    ((w as i32) >> 20) as i64
}

#[inline]
fn imm_s(w: u32) -> i64 {
    let hi = ((w as i32) >> 25) as i64; // sign-extended imm[11:5]
    let lo = rd(w) as i64; // imm[4:0]
    (hi << 5) | lo
}

#[inline]
fn imm_b(w: u32) -> i64 {
    let b12 = ((w as i32) >> 31) as i64; // sign bit
    let b11 = ((w >> 7) & 1) as i64;
    let b10_5 = ((w >> 25) & 0x3F) as i64;
    let b4_1 = ((w >> 8) & 0xF) as i64;
    (b12 << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1)
}

#[inline]
fn imm_u(w: u32) -> i64 {
    ((w & 0xFFFF_F000) as i32) as i64
}

#[inline]
fn imm_j(w: u32) -> i64 {
    let b20 = ((w as i32) >> 31) as i64; // sign bit
    let b19_12 = ((w >> 12) & 0xFF) as i64;
    let b11 = ((w >> 20) & 1) as i64;
    let b10_1 = ((w >> 21) & 0x3FF) as i64;
    (b20 << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1)
}

/// Decodes a 32-bit word into an [`Inst`].
///
/// # Errors
///
/// Returns [`DecodeError`] for words outside the implemented RV64IMA+FD
/// subset and the FlexStep custom-0 space.
///
/// ```
/// use flexstep_isa::{decode::decode, inst::Inst, reg::XReg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// assert_eq!(decode(0x0080_00EF)?, Inst::Jal { rd: XReg::RA, offset: 8 });
/// # Ok(())
/// # }
/// ```
pub fn decode(w: u32) -> Result<Inst, DecodeError> {
    let err = || DecodeError::new(w);
    let inst = match opcode(w) {
        OP_LUI => Inst::Lui {
            rd: xrd(w),
            imm: imm_u(w),
        },
        OP_AUIPC => Inst::Auipc {
            rd: xrd(w),
            imm: imm_u(w),
        },
        OP_JAL => Inst::Jal {
            rd: xrd(w),
            offset: imm_j(w),
        },
        OP_JALR if funct3(w) == 0 => Inst::Jalr {
            rd: xrd(w),
            rs1: xrs1(w),
            offset: imm_i(w),
        },
        OP_BRANCH => {
            let op = match funct3(w) {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return Err(err()),
            };
            Inst::Branch {
                op,
                rs1: xrs1(w),
                rs2: xrs2(w),
                offset: imm_b(w),
            }
        }
        OP_LOAD => {
            let op = match funct3(w) {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b011 => LoadOp::Ld,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                0b110 => LoadOp::Lwu,
                _ => return Err(err()),
            };
            Inst::Load {
                op,
                rd: xrd(w),
                rs1: xrs1(w),
                offset: imm_i(w),
            }
        }
        OP_STORE => {
            let op = match funct3(w) {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                0b011 => StoreOp::Sd,
                _ => return Err(err()),
            };
            Inst::Store {
                op,
                rs1: xrs1(w),
                rs2: xrs2(w),
                offset: imm_s(w),
            }
        }
        OP_IMM => {
            let rd = xrd(w);
            let rs1 = xrs1(w);
            match funct3(w) {
                0b000 => Inst::OpImm {
                    op: IntImmOp::Addi,
                    rd,
                    rs1,
                    imm: imm_i(w),
                },
                0b010 => Inst::OpImm {
                    op: IntImmOp::Slti,
                    rd,
                    rs1,
                    imm: imm_i(w),
                },
                0b011 => Inst::OpImm {
                    op: IntImmOp::Sltiu,
                    rd,
                    rs1,
                    imm: imm_i(w),
                },
                0b100 => Inst::OpImm {
                    op: IntImmOp::Xori,
                    rd,
                    rs1,
                    imm: imm_i(w),
                },
                0b110 => Inst::OpImm {
                    op: IntImmOp::Ori,
                    rd,
                    rs1,
                    imm: imm_i(w),
                },
                0b111 => Inst::OpImm {
                    op: IntImmOp::Andi,
                    rd,
                    rs1,
                    imm: imm_i(w),
                },
                0b001 if (w >> 26) == 0 => Inst::OpImm {
                    op: IntImmOp::Slli,
                    rd,
                    rs1,
                    imm: ((w >> 20) & 0x3F) as i64,
                },
                0b101 => {
                    let shamt = ((w >> 20) & 0x3F) as i64;
                    match w >> 26 {
                        0b000000 => Inst::OpImm {
                            op: IntImmOp::Srli,
                            rd,
                            rs1,
                            imm: shamt,
                        },
                        0b010000 => Inst::OpImm {
                            op: IntImmOp::Srai,
                            rd,
                            rs1,
                            imm: shamt,
                        },
                        _ => return Err(err()),
                    }
                }
                _ => return Err(err()),
            }
        }
        OP_OP => {
            let key = (funct3(w), funct7(w));
            let op = match key {
                (0b000, 0b0000000) => IntOp::Add,
                (0b000, 0b0100000) => IntOp::Sub,
                (0b001, 0b0000000) => IntOp::Sll,
                (0b010, 0b0000000) => IntOp::Slt,
                (0b011, 0b0000000) => IntOp::Sltu,
                (0b100, 0b0000000) => IntOp::Xor,
                (0b101, 0b0000000) => IntOp::Srl,
                (0b101, 0b0100000) => IntOp::Sra,
                (0b110, 0b0000000) => IntOp::Or,
                (0b111, 0b0000000) => IntOp::And,
                (0b000, 0b0000001) => IntOp::Mul,
                (0b001, 0b0000001) => IntOp::Mulh,
                (0b010, 0b0000001) => IntOp::Mulhsu,
                (0b011, 0b0000001) => IntOp::Mulhu,
                (0b100, 0b0000001) => IntOp::Div,
                (0b101, 0b0000001) => IntOp::Divu,
                (0b110, 0b0000001) => IntOp::Rem,
                (0b111, 0b0000001) => IntOp::Remu,
                _ => return Err(err()),
            };
            Inst::Op {
                op,
                rd: xrd(w),
                rs1: xrs1(w),
                rs2: xrs2(w),
            }
        }
        OP_IMM_32 => {
            let rd = xrd(w);
            let rs1 = xrs1(w);
            match funct3(w) {
                0b000 => Inst::OpImmW {
                    op: IntImmWOp::Addiw,
                    rd,
                    rs1,
                    imm: imm_i(w),
                },
                0b001 if funct7(w) == 0 => Inst::OpImmW {
                    op: IntImmWOp::Slliw,
                    rd,
                    rs1,
                    imm: rs2(w) as i64,
                },
                0b101 => match funct7(w) {
                    0b0000000 => Inst::OpImmW {
                        op: IntImmWOp::Srliw,
                        rd,
                        rs1,
                        imm: rs2(w) as i64,
                    },
                    0b0100000 => Inst::OpImmW {
                        op: IntImmWOp::Sraiw,
                        rd,
                        rs1,
                        imm: rs2(w) as i64,
                    },
                    _ => return Err(err()),
                },
                _ => return Err(err()),
            }
        }
        OP_OP_32 => {
            let key = (funct3(w), funct7(w));
            let op = match key {
                (0b000, 0b0000000) => IntWOp::Addw,
                (0b000, 0b0100000) => IntWOp::Subw,
                (0b001, 0b0000000) => IntWOp::Sllw,
                (0b101, 0b0000000) => IntWOp::Srlw,
                (0b101, 0b0100000) => IntWOp::Sraw,
                (0b000, 0b0000001) => IntWOp::Mulw,
                (0b100, 0b0000001) => IntWOp::Divw,
                (0b101, 0b0000001) => IntWOp::Divuw,
                (0b110, 0b0000001) => IntWOp::Remw,
                (0b111, 0b0000001) => IntWOp::Remuw,
                _ => return Err(err()),
            };
            Inst::OpW {
                op,
                rd: xrd(w),
                rs1: xrs1(w),
                rs2: xrs2(w),
            }
        }
        OP_AMO => {
            let width = match funct3(w) {
                0b010 => AmoWidth::W,
                0b011 => AmoWidth::D,
                _ => return Err(err()),
            };
            let funct5 = funct7(w) >> 2; // ignore aq/rl bits
            match funct5 {
                LR_FUNCT5 if rs2(w) == 0 => Inst::Lr {
                    width,
                    rd: xrd(w),
                    rs1: xrs1(w),
                },
                SC_FUNCT5 => Inst::Sc {
                    width,
                    rd: xrd(w),
                    rs1: xrs1(w),
                    rs2: xrs2(w),
                },
                f5 => {
                    let op = match f5 {
                        0b00000 => AmoOp::Add,
                        0b00001 => AmoOp::Swap,
                        0b00100 => AmoOp::Xor,
                        0b01000 => AmoOp::Or,
                        0b01100 => AmoOp::And,
                        0b10000 => AmoOp::Min,
                        0b10100 => AmoOp::Max,
                        0b11000 => AmoOp::Minu,
                        0b11100 => AmoOp::Maxu,
                        _ => return Err(err()),
                    };
                    Inst::Amo {
                        op,
                        width,
                        rd: xrd(w),
                        rs1: xrs1(w),
                        rs2: xrs2(w),
                    }
                }
            }
        }
        OP_SYSTEM => match funct3(w) {
            0b000 => match w >> 7 {
                0 => Inst::Ecall,
                x if x == (1 << 13) => Inst::Ebreak,
                _ if funct7(w) == 0b0011000 && rs2(w) == 0b00010 && rs1(w) == 0 && rd(w) == 0 => {
                    Inst::Mret
                }
                _ if funct7(w) == 0b0001000 && rs2(w) == 0b00101 && rs1(w) == 0 && rd(w) == 0 => {
                    Inst::Wfi
                }
                _ => return Err(err()),
            },
            f3 => {
                let op = match f3 {
                    0b001 => CsrOp::Rw,
                    0b010 => CsrOp::Rs,
                    0b011 => CsrOp::Rc,
                    0b101 => CsrOp::Rwi,
                    0b110 => CsrOp::Rsi,
                    0b111 => CsrOp::Rci,
                    _ => return Err(err()),
                };
                Inst::Csr {
                    op,
                    rd: xrd(w),
                    src: rs1(w),
                    csr: (w >> 20) as u16,
                }
            }
        },
        OP_MISC_MEM if funct3(w) == 0 => Inst::Fence,
        OP_LOAD_FP if funct3(w) == 0b011 => Inst::Fld {
            rd: frd(w),
            rs1: xrs1(w),
            offset: imm_i(w),
        },
        OP_STORE_FP if funct3(w) == 0b011 => Inst::Fsd {
            rs1: xrs1(w),
            rs2: frs2(w),
            offset: imm_s(w),
        },
        OP_FMADD | OP_FMSUB | OP_FNMSUB | OP_FNMADD => {
            if (w >> 25) & 0b11 != 0b01 {
                return Err(err()); // only double precision implemented
            }
            let op = match opcode(w) {
                OP_FMADD => FmaOp::Madd,
                OP_FMSUB => FmaOp::Msub,
                OP_FNMSUB => FmaOp::Nmsub,
                _ => FmaOp::Nmadd,
            };
            Inst::Fma {
                op,
                rd: frd(w),
                rs1: frs1(w),
                rs2: frs2(w),
                rs3: FReg::of(w >> 27),
            }
        }
        OP_OP_FP => match funct7(w) {
            0b0000001 => Inst::Fp {
                op: FpOp::Add,
                rd: frd(w),
                rs1: frs1(w),
                rs2: frs2(w),
            },
            0b0000101 => Inst::Fp {
                op: FpOp::Sub,
                rd: frd(w),
                rs1: frs1(w),
                rs2: frs2(w),
            },
            0b0001001 => Inst::Fp {
                op: FpOp::Mul,
                rd: frd(w),
                rs1: frs1(w),
                rs2: frs2(w),
            },
            0b0001101 => Inst::Fp {
                op: FpOp::Div,
                rd: frd(w),
                rs1: frs1(w),
                rs2: frs2(w),
            },
            0b0101101 if rs2(w) == 0 => Inst::FpSqrt {
                rd: frd(w),
                rs1: frs1(w),
            },
            0b0010001 => {
                let op = match funct3(w) {
                    0b000 => FpOp::SgnJ,
                    0b001 => FpOp::SgnJN,
                    0b010 => FpOp::SgnJX,
                    _ => return Err(err()),
                };
                Inst::Fp {
                    op,
                    rd: frd(w),
                    rs1: frs1(w),
                    rs2: frs2(w),
                }
            }
            0b0010101 => {
                let op = match funct3(w) {
                    0b000 => FpOp::Min,
                    0b001 => FpOp::Max,
                    _ => return Err(err()),
                };
                Inst::Fp {
                    op,
                    rd: frd(w),
                    rs1: frs1(w),
                    rs2: frs2(w),
                }
            }
            0b1010001 => {
                let op = match funct3(w) {
                    0b010 => FpCmpOp::Eq,
                    0b001 => FpCmpOp::Lt,
                    0b000 => FpCmpOp::Le,
                    _ => return Err(err()),
                };
                Inst::FpCmp {
                    op,
                    rd: xrd(w),
                    rs1: frs1(w),
                    rs2: frs2(w),
                }
            }
            0b1100001 => {
                let op = match rs2(w) {
                    0b00000 => FpCvtOp::DToW,
                    0b00010 => FpCvtOp::DToL,
                    0b00011 => FpCvtOp::DToLu,
                    _ => return Err(err()),
                };
                Inst::FpCvt {
                    op,
                    rd: rd(w),
                    rs1: rs1(w),
                }
            }
            0b1101001 => {
                let op = match rs2(w) {
                    0b00000 => FpCvtOp::WToD,
                    0b00010 => FpCvtOp::LToD,
                    0b00011 => FpCvtOp::LuToD,
                    _ => return Err(err()),
                };
                Inst::FpCvt {
                    op,
                    rd: rd(w),
                    rs1: rs1(w),
                }
            }
            0b1110001 if rs2(w) == 0 && funct3(w) == 0 => Inst::FmvXD {
                rd: xrd(w),
                rs1: frs1(w),
            },
            0b1111001 if rs2(w) == 0 && funct3(w) == 0 => Inst::FmvDX {
                rd: frd(w),
                rs1: xrs1(w),
            },
            _ => return Err(err()),
        },
        OP_CUSTOM0 if funct3(w) == 0 => {
            let op = match funct7(w) {
                0 => FlexOp::GIdsContain,
                1 => FlexOp::GConfigure,
                2 => FlexOp::MAssociate,
                3 => FlexOp::MCheck,
                4 => FlexOp::CCheckState,
                5 => FlexOp::CRecord,
                6 => FlexOp::CApply,
                7 => FlexOp::CJal,
                8 => FlexOp::CResult,
                _ => return Err(err()),
            };
            Inst::Flex {
                op,
                rd: xrd(w),
                rs1: xrs1(w),
                rs2: xrs2(w),
            }
        }
        _ => return Err(err()),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn decode_known_words() {
        assert_eq!(
            decode(0x02A5_8513).unwrap(),
            Inst::OpImm {
                op: IntImmOp::Addi,
                rd: XReg::A0,
                rs1: XReg::A1,
                imm: 42
            }
        );
        assert_eq!(decode(0x0000_0073).unwrap(), Inst::Ecall);
        assert_eq!(decode(0x3020_0073).unwrap(), Inst::Mret);
    }

    #[test]
    fn decode_negative_immediates() {
        // addi a0, a0, -1  => 0xFFF50513
        assert_eq!(
            decode(0xFFF5_0513).unwrap(),
            Inst::OpImm {
                op: IntImmOp::Addi,
                rd: XReg::A0,
                rs1: XReg::A0,
                imm: -1
            }
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xFFFF_FFFF).is_err());
        // Single-precision FMA (funct2=00) is not implemented.
        assert!(decode(0x0000_0043).is_err());
    }

    #[test]
    fn decode_ignores_amo_aq_rl() {
        let canonical = Inst::Amo {
            op: AmoOp::Add,
            width: AmoWidth::D,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        };
        let word = encode(&canonical).unwrap();
        let with_aqrl = word | (0b11 << 25);
        assert_eq!(decode(with_aqrl).unwrap(), canonical);
    }

    #[test]
    fn decode_fp_static_rounding_mode() {
        let canonical = Inst::Fp {
            op: FpOp::Add,
            rd: FReg::of(1),
            rs1: FReg::of(2),
            rs2: FReg::of(3),
        };
        let word = encode(&canonical).unwrap();
        let rne = word & !(0b111 << 12); // rm = RNE instead of DYN
        assert_eq!(decode(rne).unwrap(), canonical);
    }

    #[test]
    fn error_carries_pc() {
        let e = decode(0).unwrap_err().at(0x8000_0000);
        assert_eq!(e.pc, 0x8000_0000);
        assert!(e.to_string().contains("0x80000000"));
    }

    #[test]
    fn negative_branch_offset_roundtrip() {
        let i = Inst::Branch {
            op: BranchOp::Ne,
            rs1: XReg::A0,
            rs2: XReg::ZERO,
            offset: -64,
        };
        assert_eq!(decode(encode(&i).unwrap()).unwrap(), i);
    }

    #[test]
    fn negative_jal_offset_roundtrip() {
        let i = Inst::Jal {
            rd: XReg::ZERO,
            offset: -2048,
        };
        assert_eq!(decode(encode(&i).unwrap()).unwrap(), i);
    }
}
