//! Integer and floating-point register identifiers.
//!
//! The simulated cores implement the RV64 register model: 32 integer
//! registers (`x0`–`x31`, with `x0` hard-wired to zero) and 32
//! double-precision floating-point registers (`f0`–`f31`). Both kinds are
//! represented as validated newtypes so that malformed register indices are
//! unrepresentable ([C-NEWTYPE]).
//!
//! ```
//! use flexstep_isa::reg::XReg;
//!
//! let sp = XReg::SP;
//! assert_eq!(sp.index(), 2);
//! assert_eq!(sp.to_string(), "sp");
//! ```

use std::fmt;

/// An integer (x) register identifier in the range `x0`–`x31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct XReg(u8);

/// A floating-point (f) register identifier in the range `f0`–`f31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

/// Error returned when constructing a register from an out-of-range index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidRegError {
    /// The rejected index.
    pub index: u32,
}

impl fmt::Display for InvalidRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "register index {} out of range 0..32", self.index)
    }
}

impl std::error::Error for InvalidRegError {}

macro_rules! named_xregs {
    ($($name:ident = $idx:expr;)*) => {
        impl XReg {
            $(
                #[doc = concat!("The `", stringify!($name), "` register (ABI name).")]
                pub const $name: XReg = XReg($idx);
            )*
        }
    };
}

named_xregs! {
    ZERO = 0; RA = 1; SP = 2; GP = 3; TP = 4;
    T0 = 5; T1 = 6; T2 = 7;
    S0 = 8; S1 = 9;
    A0 = 10; A1 = 11; A2 = 12; A3 = 13; A4 = 14; A5 = 15; A6 = 16; A7 = 17;
    S2 = 18; S3 = 19; S4 = 20; S5 = 21; S6 = 22; S7 = 23; S8 = 24; S9 = 25;
    S10 = 26; S11 = 27;
    T3 = 28; T4 = 29; T5 = 30; T6 = 31;
}

const XREG_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl XReg {
    /// Creates a register from a raw index.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRegError`] if `index >= 32`.
    pub fn new(index: u32) -> Result<Self, InvalidRegError> {
        if index < 32 {
            Ok(XReg(index as u8))
        } else {
            Err(InvalidRegError { index })
        }
    }

    /// Creates a register from a raw index, panicking on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`. Prefer [`XReg::new`] for untrusted input.
    pub fn of(index: u32) -> Self {
        Self::new(index).expect("x-register index out of range")
    }

    /// Returns the raw register index (0–31).
    pub fn index(self) -> u8 {
        self.0
    }

    /// Returns the ABI name (`zero`, `ra`, `sp`, …).
    pub fn abi_name(self) -> &'static str {
        XREG_NAMES[self.0 as usize]
    }

    /// Returns `true` for `x0`, which always reads as zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 integer registers in index order.
    pub fn all() -> impl Iterator<Item = XReg> {
        (0..32).map(XReg)
    }
}

impl FReg {
    /// Creates a floating-point register from a raw index.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRegError`] if `index >= 32`.
    pub fn new(index: u32) -> Result<Self, InvalidRegError> {
        if index < 32 {
            Ok(FReg(index as u8))
        } else {
            Err(InvalidRegError { index })
        }
    }

    /// Creates a floating-point register from a raw index, panicking on
    /// overflow.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`. Prefer [`FReg::new`] for untrusted input.
    pub fn of(index: u32) -> Self {
        Self::new(index).expect("f-register index out of range")
    }

    /// Returns the raw register index (0–31).
    pub fn index(self) -> u8 {
        self.0
    }

    /// Iterates over all 32 floating-point registers in index order.
    pub fn all() -> impl Iterator<Item = FReg> {
        (0..32).map(FReg)
    }
}

impl fmt::Display for XReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl From<XReg> for u32 {
    fn from(r: XReg) -> u32 {
        u32::from(r.0)
    }
}

impl From<FReg> for u32 {
    fn from(r: FReg) -> u32 {
        u32::from(r.0)
    }
}

impl TryFrom<u32> for XReg {
    type Error = InvalidRegError;

    fn try_from(index: u32) -> Result<Self, Self::Error> {
        XReg::new(index)
    }
}

impl TryFrom<u32> for FReg {
    type Error = InvalidRegError;

    fn try_from(index: u32) -> Result<Self, Self::Error> {
        FReg::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xreg_roundtrip_indices() {
        for i in 0..32 {
            assert_eq!(XReg::of(i).index() as u32, i);
        }
    }

    #[test]
    fn xreg_rejects_out_of_range() {
        assert_eq!(XReg::new(32), Err(InvalidRegError { index: 32 }));
        assert_eq!(
            XReg::new(u32::MAX),
            Err(InvalidRegError { index: u32::MAX })
        );
    }

    #[test]
    fn freg_rejects_out_of_range() {
        assert!(FReg::new(31).is_ok());
        assert!(FReg::new(32).is_err());
    }

    #[test]
    fn abi_names_match_convention() {
        assert_eq!(XReg::ZERO.abi_name(), "zero");
        assert_eq!(XReg::RA.abi_name(), "ra");
        assert_eq!(XReg::A0.abi_name(), "a0");
        assert_eq!(XReg::T6.abi_name(), "t6");
        assert_eq!(XReg::S11.abi_name(), "s11");
    }

    #[test]
    fn zero_register_is_flagged() {
        assert!(XReg::ZERO.is_zero());
        assert!(!XReg::A0.is_zero());
    }

    #[test]
    fn display_uses_abi_and_f_names() {
        assert_eq!(XReg::SP.to_string(), "sp");
        assert_eq!(FReg::of(7).to_string(), "f7");
    }

    #[test]
    fn all_iterators_cover_register_files() {
        assert_eq!(XReg::all().count(), 32);
        assert_eq!(FReg::all().count(), 32);
        assert_eq!(XReg::all().next(), Some(XReg::ZERO));
    }

    #[test]
    fn error_display_is_informative() {
        let e = InvalidRegError { index: 99 };
        assert_eq!(e.to_string(), "register index 99 out of range 0..32");
    }
}
