//! Two-pass assembler producing loadable guest [`Program`]s.
//!
//! The assembler accepts decoded [`Inst`] values plus label-based control
//! flow and a data segment, then resolves all references in
//! [`Assembler::finish`]. Pseudo-instructions (`li`, `la`, `mv`, `call`,
//! `ret`, …) expand to canonical RV64 sequences.
//!
//! ```
//! use flexstep_isa::asm::Assembler;
//! use flexstep_isa::reg::XReg;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Assembler::new("count_down");
//! asm.li(XReg::A0, 10);
//! asm.label("loop")?;
//! asm.addi(XReg::A0, XReg::A0, -1);
//! asm.bnez(XReg::A0, "loop");
//! asm.ecall(); // yield to the kernel
//! let program = asm.finish()?;
//! assert!(program.text.len() >= 4);
//! # Ok(())
//! # }
//! ```

use crate::encode::{encode, EncodeError};
use crate::inst::*;
use crate::reg::{FReg, XReg};
use std::collections::BTreeMap;
use std::fmt;

/// Default base address of the text segment.
///
/// Kept below 2³¹ so absolute addresses materialise with a two-instruction
/// `lui`/`addiw` pair without sign-extension surprises.
pub const DEFAULT_TEXT_BASE: u64 = 0x1000_0000;
/// Default base address of the data segment.
pub const DEFAULT_DATA_BASE: u64 = 0x2000_0000;
/// Default base address of the stack (grows downwards).
pub const DEFAULT_STACK_TOP: u64 = 0x3000_0000;

/// A fully assembled, position-resolved guest program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Human-readable program name (used in experiment reports).
    pub name: String,
    /// Address of the first instruction to execute.
    pub entry: u64,
    /// Base address of the text segment.
    pub text_base: u64,
    /// Encoded instruction words.
    pub text: Vec<u32>,
    /// Base address of the data segment.
    pub data_base: u64,
    /// Initial data-segment image.
    pub data: Vec<u8>,
    /// Resolved label addresses (text and data).
    pub symbols: BTreeMap<String, u64>,
}

impl Program {
    /// The address one past the last instruction.
    pub fn text_end(&self) -> u64 {
        self.text_base + (self.text.len() as u64) * 4
    }

    /// The address one past the initialised data.
    pub fn data_end(&self) -> u64 {
        self.data_base + self.data.len() as u64
    }

    /// Looks up a label address.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Total number of instructions.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }
}

/// Error raised while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was defined twice.
    DuplicateLabel {
        /// The offending label.
        label: String,
    },
    /// A referenced label was never defined.
    UnknownLabel {
        /// The missing label.
        label: String,
    },
    /// An instruction failed to encode after resolution.
    Encode {
        /// Index of the offending instruction in the text stream.
        index: usize,
        /// The underlying encoding failure.
        source: EncodeError,
    },
    /// A resolved absolute address exceeds the 2³¹ range reachable by
    /// `lui`/`addiw` materialisation.
    AddressOutOfRange {
        /// The offending address.
        addr: u64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::DuplicateLabel { label } => write!(f, "duplicate label `{label}`"),
            AsmError::UnknownLabel { label } => write!(f, "unknown label `{label}`"),
            AsmError::Encode { index, source } => {
                write!(f, "instruction {index} failed to encode: {source}")
            }
            AsmError::AddressOutOfRange { addr } => {
                write!(f, "address {addr:#x} not reachable by lui/addiw")
            }
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmError::Encode { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
enum Item {
    /// A fully formed instruction.
    Inst(Inst),
    /// Conditional branch to a label (1 word).
    BranchTo {
        op: BranchOp,
        rs1: XReg,
        rs2: XReg,
        label: String,
    },
    /// `jal` to a label (1 word).
    JalTo { rd: XReg, label: String },
    /// Absolute-address materialisation (`lui`+`addiw`, 2 words).
    LoadAddr { rd: XReg, label: String },
}

impl Item {
    fn words(&self) -> usize {
        match self {
            Item::LoadAddr { .. } => 2,
            _ => 1,
        }
    }
}

/// Builder for guest programs. See the [module documentation](self).
#[derive(Debug, Clone)]
pub struct Assembler {
    name: String,
    text_base: u64,
    data_base: u64,
    items: Vec<Item>,
    text_len: usize,
    labels: BTreeMap<String, u64>,
    data: Vec<u8>,
}

impl Assembler {
    /// Creates an assembler with the default segment layout.
    pub fn new(name: impl Into<String>) -> Self {
        Assembler::with_bases(name, DEFAULT_TEXT_BASE, DEFAULT_DATA_BASE)
    }

    /// Creates an assembler with explicit text/data base addresses.
    pub fn with_bases(name: impl Into<String>, text_base: u64, data_base: u64) -> Self {
        Assembler {
            name: name.into(),
            text_base,
            data_base,
            items: Vec::new(),
            text_len: 0,
            labels: BTreeMap::new(),
            data: Vec::new(),
        }
    }

    /// The address the *next* pushed instruction will occupy.
    pub fn here(&self) -> u64 {
        self.text_base + (self.text_len as u64) * 4
    }

    /// Defines a text label at the current position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DuplicateLabel`] if the label already exists.
    pub fn label(&mut self, name: impl Into<String>) -> Result<(), AsmError> {
        let name = name.into();
        let here = self.here();
        if self.labels.insert(name.clone(), here).is_some() {
            return Err(AsmError::DuplicateLabel { label: name });
        }
        Ok(())
    }

    /// Pushes a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.text_len += 1;
        self.items.push(Item::Inst(inst));
        self
    }

    /// Number of instructions emitted so far — lets layout-sensitive
    /// kernels (e.g. segment-aligned loops) pad to exact counts.
    pub fn text_len(&self) -> usize {
        self.text_len
    }

    // ----- data segment ---------------------------------------------------

    /// Defines a data label at the current end of the data segment.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DuplicateLabel`] if the label already exists.
    pub fn data_label(&mut self, name: impl Into<String>) -> Result<u64, AsmError> {
        let name = name.into();
        let addr = self.data_base + self.data.len() as u64;
        if self.labels.insert(name.clone(), addr).is_some() {
            return Err(AsmError::DuplicateLabel { label: name });
        }
        Ok(addr)
    }

    /// Appends raw bytes to the data segment.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.data.extend_from_slice(bytes);
        self
    }

    /// Appends 64-bit little-endian words to the data segment.
    pub fn data_u64s(&mut self, values: &[u64]) -> &mut Self {
        for v in values {
            self.data.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Appends IEEE-754 doubles to the data segment.
    pub fn data_f64s(&mut self, values: &[f64]) -> &mut Self {
        for v in values {
            self.data.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self
    }

    /// Reserves `n` zero bytes in the data segment.
    pub fn data_zeros(&mut self, n: usize) -> &mut Self {
        self.data.resize(self.data.len() + n, 0);
        self
    }

    /// Pads the data segment to the given alignment.
    pub fn data_align(&mut self, align: usize) -> &mut Self {
        let rem = self.data.len() % align;
        if rem != 0 {
            self.data_zeros(align - rem);
        }
        self
    }

    // ----- label-relative control flow -------------------------------------

    /// Conditional branch to `label`.
    pub fn branch(
        &mut self,
        op: BranchOp,
        rs1: XReg,
        rs2: XReg,
        label: impl Into<String>,
    ) -> &mut Self {
        self.text_len += 1;
        self.items.push(Item::BranchTo {
            op,
            rs1,
            rs2,
            label: label.into(),
        });
        self
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: XReg, rs2: XReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchOp::Eq, rs1, rs2, label)
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: XReg, rs2: XReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchOp::Ne, rs1, rs2, label)
    }

    /// `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: XReg, rs2: XReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchOp::Lt, rs1, rs2, label)
    }

    /// `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: XReg, rs2: XReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchOp::Ge, rs1, rs2, label)
    }

    /// `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: XReg, rs2: XReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchOp::Ltu, rs1, rs2, label)
    }

    /// `bgeu rs1, rs2, label`.
    pub fn bgeu(&mut self, rs1: XReg, rs2: XReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchOp::Geu, rs1, rs2, label)
    }

    /// `beqz rs, label` (branch if zero).
    pub fn beqz(&mut self, rs: XReg, label: impl Into<String>) -> &mut Self {
        self.beq(rs, XReg::ZERO, label)
    }

    /// `bnez rs, label` (branch if non-zero).
    pub fn bnez(&mut self, rs: XReg, label: impl Into<String>) -> &mut Self {
        self.bne(rs, XReg::ZERO, label)
    }

    /// Unconditional jump to `label`.
    pub fn j(&mut self, label: impl Into<String>) -> &mut Self {
        self.text_len += 1;
        self.items.push(Item::JalTo {
            rd: XReg::ZERO,
            label: label.into(),
        });
        self
    }

    /// `call label` (`jal ra, label`).
    pub fn call(&mut self, label: impl Into<String>) -> &mut Self {
        self.text_len += 1;
        self.items.push(Item::JalTo {
            rd: XReg::RA,
            label: label.into(),
        });
        self
    }

    /// `ret` (`jalr x0, 0(ra)`).
    pub fn ret(&mut self) -> &mut Self {
        self.push(Inst::Jalr {
            rd: XReg::ZERO,
            rs1: XReg::RA,
            offset: 0,
        })
    }

    /// Loads the absolute address of `label` into `rd` (`lui`+`addiw`).
    pub fn la(&mut self, rd: XReg, label: impl Into<String>) -> &mut Self {
        self.text_len += 2;
        self.items.push(Item::LoadAddr {
            rd,
            label: label.into(),
        });
        self
    }

    // ----- common pseudo/short forms ---------------------------------------

    /// Loads an arbitrary 64-bit constant using the canonical shortest
    /// `lui`/`addiw`/`slli`/`addi` sequence.
    pub fn li(&mut self, rd: XReg, value: i64) -> &mut Self {
        for inst in materialize_const(rd, value) {
            self.push(inst);
        }
        self
    }

    /// `mv rd, rs` (`addi rd, rs, 0`).
    pub fn mv(&mut self, rd: XReg, rs: XReg) -> &mut Self {
        self.push(Inst::OpImm {
            op: IntImmOp::Addi,
            rd,
            rs1: rs,
            imm: 0,
        })
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::NOP)
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: XReg, rs1: XReg, imm: i64) -> &mut Self {
        self.push(Inst::OpImm {
            op: IntImmOp::Addi,
            rd,
            rs1,
            imm,
        })
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.push(Inst::Op {
            op: IntOp::Add,
            rd,
            rs1,
            rs2,
        })
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.push(Inst::Op {
            op: IntOp::Sub,
            rd,
            rs1,
            rs2,
        })
    }

    /// `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.push(Inst::Op {
            op: IntOp::Mul,
            rd,
            rs1,
            rs2,
        })
    }

    /// Integer load.
    pub fn load(&mut self, op: LoadOp, rd: XReg, rs1: XReg, offset: i64) -> &mut Self {
        self.push(Inst::Load {
            op,
            rd,
            rs1,
            offset,
        })
    }

    /// Integer store.
    pub fn store(&mut self, op: StoreOp, rs1: XReg, rs2: XReg, offset: i64) -> &mut Self {
        self.push(Inst::Store {
            op,
            rs1,
            rs2,
            offset,
        })
    }

    /// `ld rd, offset(rs1)`.
    pub fn ld(&mut self, rd: XReg, rs1: XReg, offset: i64) -> &mut Self {
        self.load(LoadOp::Ld, rd, rs1, offset)
    }

    /// `sd rs2, offset(rs1)`.
    pub fn sd(&mut self, rs1: XReg, rs2: XReg, offset: i64) -> &mut Self {
        self.store(StoreOp::Sd, rs1, rs2, offset)
    }

    /// `fld rd, offset(rs1)`.
    pub fn fld(&mut self, rd: FReg, rs1: XReg, offset: i64) -> &mut Self {
        self.push(Inst::Fld { rd, rs1, offset })
    }

    /// `fsd rs2, offset(rs1)`.
    pub fn fsd(&mut self, rs1: XReg, rs2: FReg, offset: i64) -> &mut Self {
        self.push(Inst::Fsd { rs1, rs2, offset })
    }

    /// `ecall`.
    pub fn ecall(&mut self) -> &mut Self {
        self.push(Inst::Ecall)
    }

    /// Resolves all labels and encodes the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for unknown labels, out-of-range offsets and
    /// unencodable instructions.
    pub fn finish(&self) -> Result<Program, AsmError> {
        let mut text = Vec::with_capacity(self.text_len);
        let mut pc = self.text_base;

        let lookup = |label: &str| -> Result<u64, AsmError> {
            self.labels
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::UnknownLabel {
                    label: label.to_string(),
                })
        };
        let enc = |inst: &Inst, index: usize| -> Result<u32, AsmError> {
            encode(inst).map_err(|source| AsmError::Encode { index, source })
        };

        for item in &self.items {
            match item {
                Item::Inst(inst) => {
                    text.push(enc(inst, text.len())?);
                }
                Item::BranchTo {
                    op,
                    rs1,
                    rs2,
                    label,
                } => {
                    let target = lookup(label)?;
                    let offset = target.wrapping_sub(pc) as i64;
                    let inst = Inst::Branch {
                        op: *op,
                        rs1: *rs1,
                        rs2: *rs2,
                        offset,
                    };
                    text.push(enc(&inst, text.len())?);
                }
                Item::JalTo { rd, label } => {
                    let target = lookup(label)?;
                    let offset = target.wrapping_sub(pc) as i64;
                    let inst = Inst::Jal { rd: *rd, offset };
                    text.push(enc(&inst, text.len())?);
                }
                Item::LoadAddr { rd, label } => {
                    let addr = lookup(label)?;
                    if addr >= (1 << 31) - 0x800 {
                        return Err(AsmError::AddressOutOfRange { addr });
                    }
                    let (hi, lo) = split_hi_lo(addr as i64);
                    text.push(enc(&Inst::Lui { rd: *rd, imm: hi }, text.len())?);
                    text.push(enc(
                        &Inst::OpImmW {
                            op: IntImmWOp::Addiw,
                            rd: *rd,
                            rs1: *rd,
                            imm: lo,
                        },
                        text.len(),
                    )?);
                }
            }
            pc += (item.words() as u64) * 4;
        }

        Ok(Program {
            name: self.name.clone(),
            entry: self.text_base,
            text_base: self.text_base,
            text,
            data_base: self.data_base,
            data: self.data.clone(),
            symbols: self.labels.clone(),
        })
    }
}

/// Splits a 32-bit-range value into `lui` upper and `addiw` lower parts such
/// that `hi + lo == value` after sign extension of `lo`.
fn split_hi_lo(value: i64) -> (i64, i64) {
    let lo = (value & 0xFFF).wrapping_sub(if value & 0x800 != 0 { 0x1000 } else { 0 });
    let hi = (value - lo) & 0xFFFF_F000;
    (hi as i32 as i64, lo)
}

/// Computes the canonical instruction sequence loading `value` into `rd`.
pub fn materialize_const(rd: XReg, value: i64) -> Vec<Inst> {
    let mut out = Vec::new();
    emit_const(&mut out, rd, value);
    out
}

fn emit_const(out: &mut Vec<Inst>, rd: XReg, value: i64) {
    if (-2048..=2047).contains(&value) {
        out.push(Inst::OpImm {
            op: IntImmOp::Addi,
            rd,
            rs1: XReg::ZERO,
            imm: value,
        });
        return;
    }
    if value >= i32::MIN as i64 && value <= i32::MAX as i64 {
        let (hi, lo) = split_hi_lo(value);
        if hi == 0 {
            // value fits in 12 bits after all (handled above), unreachable,
            // but keep a safe fallback.
            out.push(Inst::OpImm {
                op: IntImmOp::Addi,
                rd,
                rs1: XReg::ZERO,
                imm: lo,
            });
            return;
        }
        out.push(Inst::Lui { rd, imm: hi });
        if lo != 0 {
            out.push(Inst::OpImmW {
                op: IntImmWOp::Addiw,
                rd,
                rs1: rd,
                imm: lo,
            });
        }
        return;
    }
    // 64-bit: materialise the upper part, shift, then add the low 12 bits.
    let lo = (value & 0xFFF).wrapping_sub(if value & 0x800 != 0 { 0x1000 } else { 0 });
    // Wrapping subtraction: register arithmetic is modulo 2⁶⁴, so the
    // materialised result is exact even when `value - lo` overflows i64.
    let upper = value.wrapping_sub(lo) >> 12;
    emit_const(out, rd, upper);
    out.push(Inst::OpImm {
        op: IntImmOp::Slli,
        rd,
        rs1: rd,
        imm: 12,
    });
    if lo != 0 {
        out.push(Inst::OpImm {
            op: IntImmOp::Addi,
            rd,
            rs1: rd,
            imm: lo,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    /// Interprets `materialize_const`'s output to verify the loaded value.
    fn eval_const_seq(insts: &[Inst], rd: XReg) -> i64 {
        let mut regs = [0i64; 32];
        for inst in insts {
            match *inst {
                Inst::OpImm {
                    op: IntImmOp::Addi,
                    rd,
                    rs1,
                    imm,
                } => {
                    regs[rd.index() as usize] = regs[rs1.index() as usize].wrapping_add(imm);
                }
                Inst::OpImm {
                    op: IntImmOp::Slli,
                    rd,
                    rs1,
                    imm,
                } => {
                    regs[rd.index() as usize] = regs[rs1.index() as usize] << imm;
                }
                Inst::OpImmW {
                    op: IntImmWOp::Addiw,
                    rd,
                    rs1,
                    imm,
                } => {
                    let v = regs[rs1.index() as usize].wrapping_add(imm);
                    regs[rd.index() as usize] = v as i32 as i64;
                }
                Inst::Lui { rd, imm } => {
                    regs[rd.index() as usize] = imm;
                }
                other => panic!("unexpected inst in li sequence: {other:?}"),
            }
        }
        regs[rd.index() as usize]
    }

    #[test]
    fn li_small_values() {
        for v in [0i64, 1, -1, 2047, -2048] {
            let seq = materialize_const(XReg::A0, v);
            assert_eq!(seq.len(), 1, "value {v}");
            assert_eq!(eval_const_seq(&seq, XReg::A0), v);
        }
    }

    #[test]
    fn li_32bit_values() {
        for v in [
            4096i64,
            -4096,
            0x12345678,
            -0x12345678,
            i32::MAX as i64,
            i32::MIN as i64,
        ] {
            let seq = materialize_const(XReg::A0, v);
            assert!(seq.len() <= 2, "value {v} took {} insts", seq.len());
            assert_eq!(eval_const_seq(&seq, XReg::A0), v, "value {v:#x}");
        }
    }

    #[test]
    fn li_64bit_values() {
        for v in [
            0x1_0000_0000i64,
            -0x1_0000_0000,
            0x1234_5678_9ABC_DEF0u64 as i64,
            i64::MAX,
            i64::MIN,
            0x7FFF_FFFF_FFFF_F800,
        ] {
            let seq = materialize_const(XReg::A0, v);
            assert_eq!(eval_const_seq(&seq, XReg::A0), v, "value {v:#x}");
            assert!(seq.len() <= 8);
        }
    }

    #[test]
    fn labels_resolve_backwards_and_forwards() {
        let mut asm = Assembler::new("t");
        asm.label("start").unwrap();
        asm.nop();
        asm.j("end");
        asm.nop();
        asm.label("end").unwrap();
        asm.beq(XReg::ZERO, XReg::ZERO, "start");
        let p = asm.finish().unwrap();
        assert_eq!(p.len(), 4);
        // The jump at index 1 must skip one instruction (offset +8).
        assert_eq!(
            decode(p.text[1]).unwrap(),
            Inst::Jal {
                rd: XReg::ZERO,
                offset: 8
            }
        );
        // The branch at index 3 goes back to start (offset -12).
        assert_eq!(
            decode(p.text[3]).unwrap(),
            Inst::Branch {
                op: BranchOp::Eq,
                rs1: XReg::ZERO,
                rs2: XReg::ZERO,
                offset: -12
            }
        );
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut asm = Assembler::new("t");
        asm.label("x").unwrap();
        assert_eq!(
            asm.label("x"),
            Err(AsmError::DuplicateLabel { label: "x".into() })
        );
    }

    #[test]
    fn unknown_label_rejected() {
        let mut asm = Assembler::new("t");
        asm.j("nowhere");
        assert_eq!(
            asm.finish().unwrap_err(),
            AsmError::UnknownLabel {
                label: "nowhere".into()
            }
        );
    }

    #[test]
    fn la_resolves_data_symbols() {
        let mut asm = Assembler::new("t");
        let addr = asm.data_label("table").unwrap();
        asm.data_u64s(&[1, 2, 3]);
        asm.la(XReg::A0, "table");
        asm.ecall();
        let p = asm.finish().unwrap();
        assert_eq!(addr, DEFAULT_DATA_BASE);
        assert_eq!(p.symbol("table"), Some(DEFAULT_DATA_BASE));
        // lui+addiw materialisation occupies two words.
        assert_eq!(p.len(), 3);
        let seq = [decode(p.text[0]).unwrap(), decode(p.text[1]).unwrap()];
        let mut regs = [0i64; 32];
        for inst in seq {
            match inst {
                Inst::Lui { rd, imm } => regs[rd.index() as usize] = imm,
                Inst::OpImmW {
                    op: IntImmWOp::Addiw,
                    rd,
                    rs1,
                    imm,
                } => {
                    regs[rd.index() as usize] =
                        (regs[rs1.index() as usize].wrapping_add(imm)) as i32 as i64;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(regs[10] as u64, DEFAULT_DATA_BASE);
    }

    #[test]
    fn data_segment_layout() {
        let mut asm = Assembler::new("t");
        asm.data_bytes(&[1, 2, 3]);
        asm.data_align(8);
        let a = asm.data_label("v").unwrap();
        asm.data_f64s(&[1.5]);
        assert_eq!(a, DEFAULT_DATA_BASE + 8);
        asm.nop();
        let p = asm.finish().unwrap();
        assert_eq!(p.data.len(), 16);
        assert_eq!(
            f64::from_bits(u64::from_le_bytes(p.data[8..16].try_into().unwrap())),
            1.5
        );
    }

    #[test]
    fn here_tracks_pseudo_expansion() {
        let mut asm = Assembler::new("t");
        assert_eq!(asm.here(), DEFAULT_TEXT_BASE);
        asm.la(XReg::A0, "later");
        assert_eq!(asm.here(), DEFAULT_TEXT_BASE + 8);
        asm.li(XReg::A1, 0x12345678);
        assert_eq!(asm.here(), DEFAULT_TEXT_BASE + 16);
        asm.label("later").unwrap();
        asm.nop();
        assert!(asm.finish().is_ok());
    }

    #[test]
    fn program_extents() {
        let mut asm = Assembler::new("t");
        asm.nop().nop();
        asm.data_zeros(10);
        let p = asm.finish().unwrap();
        assert_eq!(p.text_end(), DEFAULT_TEXT_BASE + 8);
        assert_eq!(p.data_end(), DEFAULT_DATA_BASE + 10);
        assert!(!p.is_empty());
    }
}
