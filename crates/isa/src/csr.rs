//! Control and status register (CSR) addresses and fields.
//!
//! Only the CSRs the FlexStep platform actually exercises are modelled:
//! machine-mode trap handling (the simulated kernel runs in M-mode, user
//! tasks in U-mode), hart identification, and the user counters that the
//! Checkpoint Control unit reads.
//!
//! ```
//! use flexstep_isa::csr;
//!
//! assert_eq!(csr::name(csr::MEPC), Some("mepc"));
//! assert_eq!(csr::MHARTID, 0xF14);
//! ```

/// Machine status register.
pub const MSTATUS: u16 = 0x300;
/// Machine ISA register (read-only identification).
pub const MISA: u16 = 0x301;
/// Machine interrupt-enable register.
pub const MIE: u16 = 0x304;
/// Machine trap-vector base address.
pub const MTVEC: u16 = 0x305;
/// Machine scratch register.
pub const MSCRATCH: u16 = 0x340;
/// Machine exception program counter.
pub const MEPC: u16 = 0x341;
/// Machine trap cause.
pub const MCAUSE: u16 = 0x342;
/// Machine bad address or instruction.
pub const MTVAL: u16 = 0x343;
/// Machine interrupt-pending register.
pub const MIP: u16 = 0x344;
/// Hart (hardware thread) ID, read-only.
pub const MHARTID: u16 = 0xF14;
/// Cycle counter, user-readable shadow.
pub const CYCLE: u16 = 0xC00;
/// Wall-clock time counter, user-readable shadow.
pub const TIME: u16 = 0xC01;
/// Instructions-retired counter, user-readable shadow.
pub const INSTRET: u16 = 0xC02;
/// Floating-point control and status register.
pub const FCSR: u16 = 0x003;

/// `mstatus.MIE` bit: machine-mode interrupts globally enabled.
pub const MSTATUS_MIE: u64 = 1 << 3;
/// `mstatus.MPIE` bit: previous `MIE` value, restored by `mret`.
pub const MSTATUS_MPIE: u64 = 1 << 7;
/// `mstatus.MPP` field shift: previous privilege mode, restored by `mret`.
pub const MSTATUS_MPP_SHIFT: u32 = 11;
/// `mstatus.MPP` field mask (two bits).
pub const MSTATUS_MPP_MASK: u64 = 0b11 << MSTATUS_MPP_SHIFT;

/// Machine timer-interrupt bit in `mie`/`mip`.
pub const MIE_MTIE: u64 = 1 << 7;
/// Machine software-interrupt bit in `mie`/`mip`.
pub const MIE_MSIE: u64 = 1 << 3;
/// Machine external-interrupt bit in `mie`/`mip`.
pub const MIE_MEIE: u64 = 1 << 11;

/// Returns the architectural name of a known CSR address, or `None` for
/// addresses this platform does not implement.
pub fn name(addr: u16) -> Option<&'static str> {
    Some(match addr {
        MSTATUS => "mstatus",
        MISA => "misa",
        MIE => "mie",
        MTVEC => "mtvec",
        MSCRATCH => "mscratch",
        MEPC => "mepc",
        MCAUSE => "mcause",
        MTVAL => "mtval",
        MIP => "mip",
        MHARTID => "mhartid",
        CYCLE => "cycle",
        TIME => "time",
        INSTRET => "instret",
        FCSR => "fcsr",
        _ => return None,
    })
}

/// Returns `true` if the CSR address is implemented by this platform.
pub fn is_implemented(addr: u16) -> bool {
    name(addr).is_some()
}

/// Returns `true` if the CSR is read-only (writes raise an illegal
/// instruction trap).
pub fn is_read_only(addr: u16) -> bool {
    matches!(addr, MHARTID | CYCLE | TIME | INSTRET)
}

/// The complete list of implemented CSR addresses, in ascending order.
pub const IMPLEMENTED: [u16; 14] = [
    FCSR, MSTATUS, MISA, MIE, MTVEC, MSCRATCH, MEPC, MCAUSE, MTVAL, MIP, CYCLE, TIME, INSTRET,
    MHARTID,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_cover_all_implemented() {
        for &addr in &IMPLEMENTED {
            assert!(name(addr).is_some(), "csr {addr:#x} missing a name");
        }
    }

    #[test]
    fn unimplemented_addresses_have_no_name() {
        assert_eq!(name(0x7C0), None);
        assert!(!is_implemented(0x7C0));
    }

    #[test]
    fn read_only_counters_are_marked() {
        assert!(is_read_only(MHARTID));
        assert!(is_read_only(CYCLE));
        assert!(!is_read_only(MEPC));
    }

    #[test]
    fn mstatus_fields_do_not_overlap() {
        assert_eq!(MSTATUS_MIE & MSTATUS_MPIE, 0);
        assert_eq!(MSTATUS_MIE & MSTATUS_MPP_MASK, 0);
        assert_eq!(MSTATUS_MPIE & MSTATUS_MPP_MASK, 0);
    }
}
