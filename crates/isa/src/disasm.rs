//! Textual disassembly.
//!
//! [`Inst`] implements [`std::fmt::Display`] producing conventional RISC-V
//! assembly syntax, which the simulator uses in traces and error reports.
//!
//! ```
//! use flexstep_isa::{inst::Inst, reg::XReg};
//!
//! let i = Inst::Jal { rd: XReg::RA, offset: -16 };
//! assert_eq!(i.to_string(), "jal ra, -16");
//! ```

use crate::csr;
use crate::inst::*;
use std::fmt;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", (imm >> 12) & 0xFFFFF),
            Inst::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", (imm >> 12) & 0xFFFFF),
            Inst::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let m = match op {
                    BranchOp::Eq => "beq",
                    BranchOp::Ne => "bne",
                    BranchOp::Lt => "blt",
                    BranchOp::Ge => "bge",
                    BranchOp::Ltu => "bltu",
                    BranchOp::Geu => "bgeu",
                };
                write!(f, "{m} {rs1}, {rs2}, {offset}")
            }
            Inst::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let m = match op {
                    LoadOp::Lb => "lb",
                    LoadOp::Lh => "lh",
                    LoadOp::Lw => "lw",
                    LoadOp::Ld => "ld",
                    LoadOp::Lbu => "lbu",
                    LoadOp::Lhu => "lhu",
                    LoadOp::Lwu => "lwu",
                };
                write!(f, "{m} {rd}, {offset}({rs1})")
            }
            Inst::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let m = match op {
                    StoreOp::Sb => "sb",
                    StoreOp::Sh => "sh",
                    StoreOp::Sw => "sw",
                    StoreOp::Sd => "sd",
                };
                write!(f, "{m} {rs2}, {offset}({rs1})")
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let m = match op {
                    IntImmOp::Addi => "addi",
                    IntImmOp::Slti => "slti",
                    IntImmOp::Sltiu => "sltiu",
                    IntImmOp::Xori => "xori",
                    IntImmOp::Ori => "ori",
                    IntImmOp::Andi => "andi",
                    IntImmOp::Slli => "slli",
                    IntImmOp::Srli => "srli",
                    IntImmOp::Srai => "srai",
                };
                write!(f, "{m} {rd}, {rs1}, {imm}")
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let m = match op {
                    IntOp::Add => "add",
                    IntOp::Sub => "sub",
                    IntOp::Sll => "sll",
                    IntOp::Slt => "slt",
                    IntOp::Sltu => "sltu",
                    IntOp::Xor => "xor",
                    IntOp::Srl => "srl",
                    IntOp::Sra => "sra",
                    IntOp::Or => "or",
                    IntOp::And => "and",
                    IntOp::Mul => "mul",
                    IntOp::Mulh => "mulh",
                    IntOp::Mulhsu => "mulhsu",
                    IntOp::Mulhu => "mulhu",
                    IntOp::Div => "div",
                    IntOp::Divu => "divu",
                    IntOp::Rem => "rem",
                    IntOp::Remu => "remu",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Inst::OpImmW { op, rd, rs1, imm } => {
                let m = match op {
                    IntImmWOp::Addiw => "addiw",
                    IntImmWOp::Slliw => "slliw",
                    IntImmWOp::Srliw => "srliw",
                    IntImmWOp::Sraiw => "sraiw",
                };
                write!(f, "{m} {rd}, {rs1}, {imm}")
            }
            Inst::OpW { op, rd, rs1, rs2 } => {
                let m = match op {
                    IntWOp::Addw => "addw",
                    IntWOp::Subw => "subw",
                    IntWOp::Sllw => "sllw",
                    IntWOp::Srlw => "srlw",
                    IntWOp::Sraw => "sraw",
                    IntWOp::Mulw => "mulw",
                    IntWOp::Divw => "divw",
                    IntWOp::Divuw => "divuw",
                    IntWOp::Remw => "remw",
                    IntWOp::Remuw => "remuw",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Inst::Lr { width, rd, rs1 } => {
                write!(f, "lr.{} {rd}, ({rs1})", width_suffix(width))
            }
            Inst::Sc {
                width,
                rd,
                rs1,
                rs2,
            } => {
                write!(f, "sc.{} {rd}, {rs2}, ({rs1})", width_suffix(width))
            }
            Inst::Amo {
                op,
                width,
                rd,
                rs1,
                rs2,
            } => {
                let m = match op {
                    AmoOp::Swap => "amoswap",
                    AmoOp::Add => "amoadd",
                    AmoOp::Xor => "amoxor",
                    AmoOp::And => "amoand",
                    AmoOp::Or => "amoor",
                    AmoOp::Min => "amomin",
                    AmoOp::Max => "amomax",
                    AmoOp::Minu => "amominu",
                    AmoOp::Maxu => "amomaxu",
                };
                write!(f, "{m}.{} {rd}, {rs2}, ({rs1})", width_suffix(width))
            }
            Inst::Csr {
                op,
                rd,
                src,
                csr: addr,
            } => {
                let m = match op {
                    CsrOp::Rw => "csrrw",
                    CsrOp::Rs => "csrrs",
                    CsrOp::Rc => "csrrc",
                    CsrOp::Rwi => "csrrwi",
                    CsrOp::Rsi => "csrrsi",
                    CsrOp::Rci => "csrrci",
                };
                let csr_name = csr::name(addr)
                    .map(String::from)
                    .unwrap_or_else(|| format!("{addr:#x}"));
                if op.is_immediate() {
                    write!(f, "{m} {rd}, {csr_name}, {src}")
                } else {
                    write!(f, "{m} {rd}, {csr_name}, {}", crate::reg::XReg::of(src))
                }
            }
            Inst::Fld { rd, rs1, offset } => write!(f, "fld {rd}, {offset}({rs1})"),
            Inst::Fsd { rs1, rs2, offset } => write!(f, "fsd {rs2}, {offset}({rs1})"),
            Inst::Fp { op, rd, rs1, rs2 } => {
                let m = match op {
                    FpOp::Add => "fadd.d",
                    FpOp::Sub => "fsub.d",
                    FpOp::Mul => "fmul.d",
                    FpOp::Div => "fdiv.d",
                    FpOp::SgnJ => "fsgnj.d",
                    FpOp::SgnJN => "fsgnjn.d",
                    FpOp::SgnJX => "fsgnjx.d",
                    FpOp::Min => "fmin.d",
                    FpOp::Max => "fmax.d",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Inst::FpSqrt { rd, rs1 } => write!(f, "fsqrt.d {rd}, {rs1}"),
            Inst::Fma {
                op,
                rd,
                rs1,
                rs2,
                rs3,
            } => {
                let m = match op {
                    FmaOp::Madd => "fmadd.d",
                    FmaOp::Msub => "fmsub.d",
                    FmaOp::Nmsub => "fnmsub.d",
                    FmaOp::Nmadd => "fnmadd.d",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}, {rs3}")
            }
            Inst::FpCmp { op, rd, rs1, rs2 } => {
                let m = match op {
                    FpCmpOp::Eq => "feq.d",
                    FpCmpOp::Lt => "flt.d",
                    FpCmpOp::Le => "fle.d",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Inst::FpCvt { op, rd, rs1 } => {
                let (m, xd) = match op {
                    FpCvtOp::DToL => ("fcvt.l.d", true),
                    FpCvtOp::DToLu => ("fcvt.lu.d", true),
                    FpCvtOp::LToD => ("fcvt.d.l", false),
                    FpCvtOp::LuToD => ("fcvt.d.lu", false),
                    FpCvtOp::DToW => ("fcvt.w.d", true),
                    FpCvtOp::WToD => ("fcvt.d.w", false),
                };
                if xd {
                    write!(f, "{m} {}, f{rs1}", crate::reg::XReg::of(rd))
                } else {
                    write!(f, "{m} f{rd}, {}", crate::reg::XReg::of(rs1))
                }
            }
            Inst::FmvXD { rd, rs1 } => write!(f, "fmv.x.d {rd}, {rs1}"),
            Inst::FmvDX { rd, rs1 } => write!(f, "fmv.d.x {rd}, {rs1}"),
            Inst::Fence => f.write_str("fence"),
            Inst::Ecall => f.write_str("ecall"),
            Inst::Ebreak => f.write_str("ebreak"),
            Inst::Mret => f.write_str("mret"),
            Inst::Wfi => f.write_str("wfi"),
            Inst::Flex { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
        }
    }
}

fn width_suffix(w: AmoWidth) -> &'static str {
    match w {
        AmoWidth::W => "w",
        AmoWidth::D => "d",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FReg, XReg};

    #[test]
    fn common_mnemonics() {
        let i = Inst::OpImm {
            op: IntImmOp::Addi,
            rd: XReg::A0,
            rs1: XReg::A1,
            imm: 42,
        };
        assert_eq!(i.to_string(), "addi a0, a1, 42");
        let i = Inst::Load {
            op: LoadOp::Ld,
            rd: XReg::A0,
            rs1: XReg::SP,
            offset: 16,
        };
        assert_eq!(i.to_string(), "ld a0, 16(sp)");
        let i = Inst::Store {
            op: StoreOp::Sd,
            rs1: XReg::SP,
            rs2: XReg::A0,
            offset: -8,
        };
        assert_eq!(i.to_string(), "sd a0, -8(sp)");
    }

    #[test]
    fn csr_uses_symbolic_names() {
        let i = Inst::Csr {
            op: CsrOp::Rs,
            rd: XReg::A0,
            src: 0,
            csr: crate::csr::MHARTID,
        };
        assert_eq!(i.to_string(), "csrrs a0, mhartid, zero");
    }

    #[test]
    fn amo_and_fp_forms() {
        let i = Inst::Amo {
            op: AmoOp::Add,
            width: AmoWidth::D,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        };
        assert_eq!(i.to_string(), "amoadd.d a0, a2, (a1)");
        let i = Inst::Fma {
            op: FmaOp::Madd,
            rd: FReg::of(0),
            rs1: FReg::of(1),
            rs2: FReg::of(2),
            rs3: FReg::of(3),
        };
        assert_eq!(i.to_string(), "fmadd.d f0, f1, f2, f3");
    }

    #[test]
    fn flex_ops_display_paper_names() {
        let i = Inst::Flex {
            op: FlexOp::MAssociate,
            rd: XReg::ZERO,
            rs1: XReg::A0,
            rs2: XReg::ZERO,
        };
        assert_eq!(i.to_string(), "m.associate zero, a0, zero");
    }

    #[test]
    fn lui_shows_upper_immediate() {
        let i = Inst::Lui {
            rd: XReg::A0,
            imm: 0x12345 << 12,
        };
        assert_eq!(i.to_string(), "lui a0, 0x12345");
    }
}
