//! Instruction encoding to 32-bit RISC-V words.
//!
//! Every [`Inst`] has exactly one canonical encoding; [`decode`] is its
//! inverse (`decode(encode(i)) == Ok(i)` for every encodable `i`, verified
//! by property tests). Floating-point arithmetic instructions are emitted
//! with the dynamic rounding mode (`rm = 0b111`), matching what compilers
//! produce.
//!
//! [`decode`]: crate::decode::decode

use crate::inst::*;

use std::fmt;

/// Error produced when an instruction's operands do not fit its format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate exceeds the signed range of its field.
    ImmOutOfRange {
        /// The offending value.
        value: i64,
        /// The field width in bits (including sign).
        bits: u8,
    },
    /// A branch or jump offset is not 2-byte aligned.
    MisalignedOffset {
        /// The offending offset.
        value: i64,
    },
    /// A U-type immediate has non-zero low 12 bits.
    UnalignedUpperImm {
        /// The offending value.
        value: i64,
    },
    /// A shift amount exceeds the operand width.
    ShiftAmountTooLarge {
        /// The offending amount.
        value: i64,
        /// Maximum permitted amount.
        max: u8,
    },
    /// A register index in a raw-index field (e.g. `FpCvt`) is out of range.
    RegIndexOutOfRange {
        /// The offending index.
        index: u32,
    },
    /// A CSR immediate source exceeds 5 bits.
    CsrImmOutOfRange {
        /// The offending value.
        value: u32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EncodeError::ImmOutOfRange { value, bits } => {
                write!(f, "immediate {value} does not fit in {bits} signed bits")
            }
            EncodeError::MisalignedOffset { value } => {
                write!(f, "control-flow offset {value} is not 2-byte aligned")
            }
            EncodeError::UnalignedUpperImm { value } => {
                write!(f, "upper immediate {value:#x} has non-zero low 12 bits")
            }
            EncodeError::ShiftAmountTooLarge { value, max } => {
                write!(f, "shift amount {value} exceeds maximum {max}")
            }
            EncodeError::RegIndexOutOfRange { index } => {
                write!(f, "register index {index} out of range 0..32")
            }
            EncodeError::CsrImmOutOfRange { value } => {
                write!(f, "csr immediate {value} does not fit in 5 bits")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

// Major opcodes (RISC-V unprivileged spec, table 24.1).
pub(crate) const OP_LOAD: u32 = 0x03;
pub(crate) const OP_LOAD_FP: u32 = 0x07;
pub(crate) const OP_CUSTOM0: u32 = 0x0B;
pub(crate) const OP_MISC_MEM: u32 = 0x0F;
pub(crate) const OP_IMM: u32 = 0x13;
pub(crate) const OP_AUIPC: u32 = 0x17;
pub(crate) const OP_IMM_32: u32 = 0x1B;
pub(crate) const OP_STORE: u32 = 0x23;
pub(crate) const OP_STORE_FP: u32 = 0x27;
pub(crate) const OP_AMO: u32 = 0x2F;
pub(crate) const OP_OP: u32 = 0x33;
pub(crate) const OP_LUI: u32 = 0x37;
pub(crate) const OP_OP_32: u32 = 0x3B;
pub(crate) const OP_FMADD: u32 = 0x43;
pub(crate) const OP_FMSUB: u32 = 0x47;
pub(crate) const OP_FNMSUB: u32 = 0x4B;
pub(crate) const OP_FNMADD: u32 = 0x4F;
pub(crate) const OP_OP_FP: u32 = 0x53;
pub(crate) const OP_BRANCH: u32 = 0x63;
pub(crate) const OP_JALR: u32 = 0x67;
pub(crate) const OP_JAL: u32 = 0x6F;
pub(crate) const OP_SYSTEM: u32 = 0x73;

/// Dynamic rounding mode, the canonical `rm` field for FP arithmetic.
pub(crate) const RM_DYN: u32 = 0b111;

fn check_simm(value: i64, bits: u8) -> Result<u32, EncodeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(EncodeError::ImmOutOfRange { value, bits });
    }
    Ok((value as u32) & ((1u32 << bits) - 1))
}

fn enc_r(opcode: u32, funct3: u32, funct7: u32, rd: u32, rs1: u32, rs2: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn enc_i(opcode: u32, funct3: u32, rd: u32, rs1: u32, imm: i64) -> Result<u32, EncodeError> {
    let imm = check_simm(imm, 12)?;
    Ok((imm << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode)
}

fn enc_s(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm: i64) -> Result<u32, EncodeError> {
    let imm = check_simm(imm, 12)?;
    let hi = (imm >> 5) & 0x7F;
    let lo = imm & 0x1F;
    Ok((hi << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (lo << 7) | opcode)
}

fn enc_b(opcode: u32, funct3: u32, rs1: u32, rs2: u32, offset: i64) -> Result<u32, EncodeError> {
    if offset % 2 != 0 {
        return Err(EncodeError::MisalignedOffset { value: offset });
    }
    let imm = check_simm(offset, 13)?;
    let b12 = (imm >> 12) & 1;
    let b11 = (imm >> 11) & 1;
    let b10_5 = (imm >> 5) & 0x3F;
    let b4_1 = (imm >> 1) & 0xF;
    Ok((b12 << 31)
        | (b10_5 << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (b4_1 << 8)
        | (b11 << 7)
        | opcode)
}

fn enc_u(opcode: u32, rd: u32, imm: i64) -> Result<u32, EncodeError> {
    if imm & 0xFFF != 0 {
        return Err(EncodeError::UnalignedUpperImm { value: imm });
    }
    if !(-(1i64 << 31)..=(1i64 << 31) - 4096).contains(&imm) {
        return Err(EncodeError::ImmOutOfRange {
            value: imm,
            bits: 32,
        });
    }
    Ok(((imm as u32) & 0xFFFF_F000) | (rd << 7) | opcode)
}

fn enc_j(opcode: u32, rd: u32, offset: i64) -> Result<u32, EncodeError> {
    if offset % 2 != 0 {
        return Err(EncodeError::MisalignedOffset { value: offset });
    }
    let imm = check_simm(offset, 21)?;
    let b20 = (imm >> 20) & 1;
    let b19_12 = (imm >> 12) & 0xFF;
    let b11 = (imm >> 11) & 1;
    let b10_1 = (imm >> 1) & 0x3FF;
    Ok((b20 << 31) | (b10_1 << 21) | (b11 << 20) | (b19_12 << 12) | (rd << 7) | opcode)
}

fn enc_r4(opcode: u32, funct2: u32, rm: u32, rd: u32, rs1: u32, rs2: u32, rs3: u32) -> u32 {
    (rs3 << 27) | (funct2 << 25) | (rs2 << 20) | (rs1 << 15) | (rm << 12) | (rd << 7) | opcode
}

fn check_reg_index(index: u32) -> Result<u32, EncodeError> {
    if index < 32 {
        Ok(index)
    } else {
        Err(EncodeError::RegIndexOutOfRange { index })
    }
}

pub(crate) fn branch_funct3(op: BranchOp) -> u32 {
    match op {
        BranchOp::Eq => 0b000,
        BranchOp::Ne => 0b001,
        BranchOp::Lt => 0b100,
        BranchOp::Ge => 0b101,
        BranchOp::Ltu => 0b110,
        BranchOp::Geu => 0b111,
    }
}

pub(crate) fn load_funct3(op: LoadOp) -> u32 {
    match op {
        LoadOp::Lb => 0b000,
        LoadOp::Lh => 0b001,
        LoadOp::Lw => 0b010,
        LoadOp::Ld => 0b011,
        LoadOp::Lbu => 0b100,
        LoadOp::Lhu => 0b101,
        LoadOp::Lwu => 0b110,
    }
}

pub(crate) fn store_funct3(op: StoreOp) -> u32 {
    match op {
        StoreOp::Sb => 0b000,
        StoreOp::Sh => 0b001,
        StoreOp::Sw => 0b010,
        StoreOp::Sd => 0b011,
    }
}

pub(crate) fn int_op_functs(op: IntOp) -> (u32, u32) {
    // (funct3, funct7)
    match op {
        IntOp::Add => (0b000, 0b0000000),
        IntOp::Sub => (0b000, 0b0100000),
        IntOp::Sll => (0b001, 0b0000000),
        IntOp::Slt => (0b010, 0b0000000),
        IntOp::Sltu => (0b011, 0b0000000),
        IntOp::Xor => (0b100, 0b0000000),
        IntOp::Srl => (0b101, 0b0000000),
        IntOp::Sra => (0b101, 0b0100000),
        IntOp::Or => (0b110, 0b0000000),
        IntOp::And => (0b111, 0b0000000),
        IntOp::Mul => (0b000, 0b0000001),
        IntOp::Mulh => (0b001, 0b0000001),
        IntOp::Mulhsu => (0b010, 0b0000001),
        IntOp::Mulhu => (0b011, 0b0000001),
        IntOp::Div => (0b100, 0b0000001),
        IntOp::Divu => (0b101, 0b0000001),
        IntOp::Rem => (0b110, 0b0000001),
        IntOp::Remu => (0b111, 0b0000001),
    }
}

pub(crate) fn int_w_op_functs(op: IntWOp) -> (u32, u32) {
    match op {
        IntWOp::Addw => (0b000, 0b0000000),
        IntWOp::Subw => (0b000, 0b0100000),
        IntWOp::Sllw => (0b001, 0b0000000),
        IntWOp::Srlw => (0b101, 0b0000000),
        IntWOp::Sraw => (0b101, 0b0100000),
        IntWOp::Mulw => (0b000, 0b0000001),
        IntWOp::Divw => (0b100, 0b0000001),
        IntWOp::Divuw => (0b101, 0b0000001),
        IntWOp::Remw => (0b110, 0b0000001),
        IntWOp::Remuw => (0b111, 0b0000001),
    }
}

pub(crate) fn amo_funct5(op: AmoOp) -> u32 {
    match op {
        AmoOp::Add => 0b00000,
        AmoOp::Swap => 0b00001,
        AmoOp::Xor => 0b00100,
        AmoOp::Or => 0b01000,
        AmoOp::And => 0b01100,
        AmoOp::Min => 0b10000,
        AmoOp::Max => 0b10100,
        AmoOp::Minu => 0b11000,
        AmoOp::Maxu => 0b11100,
    }
}

pub(crate) const LR_FUNCT5: u32 = 0b00010;
pub(crate) const SC_FUNCT5: u32 = 0b00011;

pub(crate) fn csr_funct3(op: CsrOp) -> u32 {
    match op {
        CsrOp::Rw => 0b001,
        CsrOp::Rs => 0b010,
        CsrOp::Rc => 0b011,
        CsrOp::Rwi => 0b101,
        CsrOp::Rsi => 0b110,
        CsrOp::Rci => 0b111,
    }
}

pub(crate) fn fp_op_functs(op: FpOp) -> (u32, u32) {
    // (funct7, funct3) — funct3 is the rounding mode for arithmetic and a
    // selector for sign-injection / min-max.
    match op {
        FpOp::Add => (0b0000001, RM_DYN),
        FpOp::Sub => (0b0000101, RM_DYN),
        FpOp::Mul => (0b0001001, RM_DYN),
        FpOp::Div => (0b0001101, RM_DYN),
        FpOp::SgnJ => (0b0010001, 0b000),
        FpOp::SgnJN => (0b0010001, 0b001),
        FpOp::SgnJX => (0b0010001, 0b010),
        FpOp::Min => (0b0010101, 0b000),
        FpOp::Max => (0b0010101, 0b001),
    }
}

pub(crate) fn fma_opcode(op: FmaOp) -> u32 {
    match op {
        FmaOp::Madd => OP_FMADD,
        FmaOp::Msub => OP_FMSUB,
        FmaOp::Nmsub => OP_FNMSUB,
        FmaOp::Nmadd => OP_FNMADD,
    }
}

pub(crate) fn fp_cmp_funct3(op: FpCmpOp) -> u32 {
    match op {
        FpCmpOp::Le => 0b000,
        FpCmpOp::Lt => 0b001,
        FpCmpOp::Eq => 0b010,
    }
}

pub(crate) fn fp_cvt_functs(op: FpCvtOp) -> (u32, u32) {
    // (funct7, rs2 selector)
    match op {
        FpCvtOp::DToW => (0b1100001, 0b00000),
        FpCvtOp::DToL => (0b1100001, 0b00010),
        FpCvtOp::DToLu => (0b1100001, 0b00011),
        FpCvtOp::WToD => (0b1101001, 0b00000),
        FpCvtOp::LToD => (0b1101001, 0b00010),
        FpCvtOp::LuToD => (0b1101001, 0b00011),
    }
}

pub(crate) fn flex_funct7(op: FlexOp) -> u32 {
    match op {
        FlexOp::GIdsContain => 0,
        FlexOp::GConfigure => 1,
        FlexOp::MAssociate => 2,
        FlexOp::MCheck => 3,
        FlexOp::CCheckState => 4,
        FlexOp::CRecord => 5,
        FlexOp::CApply => 6,
        FlexOp::CJal => 7,
        FlexOp::CResult => 8,
    }
}

/// Encodes an instruction to its canonical 32-bit word.
///
/// # Errors
///
/// Returns an [`EncodeError`] when an immediate, offset, shift amount or raw
/// register index does not fit the instruction format.
///
/// ```
/// use flexstep_isa::{encode::encode, inst::Inst, reg::XReg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let word = encode(&Inst::Jal { rd: XReg::RA, offset: 8 })?;
/// assert_eq!(word, 0x008000EF);
/// # Ok(())
/// # }
/// ```
pub fn encode(inst: &Inst) -> Result<u32, EncodeError> {
    let word = match *inst {
        Inst::Lui { rd, imm } => enc_u(OP_LUI, rd.into(), imm)?,
        Inst::Auipc { rd, imm } => enc_u(OP_AUIPC, rd.into(), imm)?,
        Inst::Jal { rd, offset } => enc_j(OP_JAL, rd.into(), offset)?,
        Inst::Jalr { rd, rs1, offset } => enc_i(OP_JALR, 0b000, rd.into(), rs1.into(), offset)?,
        Inst::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => enc_b(OP_BRANCH, branch_funct3(op), rs1.into(), rs2.into(), offset)?,
        Inst::Load {
            op,
            rd,
            rs1,
            offset,
        } => enc_i(OP_LOAD, load_funct3(op), rd.into(), rs1.into(), offset)?,
        Inst::Store {
            op,
            rs1,
            rs2,
            offset,
        } => enc_s(OP_STORE, store_funct3(op), rs1.into(), rs2.into(), offset)?,
        Inst::OpImm { op, rd, rs1, imm } => match op {
            IntImmOp::Slli | IntImmOp::Srli | IntImmOp::Srai => {
                if !(0..64).contains(&imm) {
                    return Err(EncodeError::ShiftAmountTooLarge {
                        value: imm,
                        max: 63,
                    });
                }
                let funct3 = if op == IntImmOp::Slli { 0b001 } else { 0b101 };
                let hi = if op == IntImmOp::Srai {
                    0b010000u32 << 6
                } else {
                    0
                };
                let imm12 = hi | imm as u32;
                (imm12 << 20)
                    | (u32::from(rs1) << 15)
                    | (funct3 << 12)
                    | (u32::from(rd) << 7)
                    | OP_IMM
            }
            _ => {
                let funct3 = match op {
                    IntImmOp::Addi => 0b000,
                    IntImmOp::Slti => 0b010,
                    IntImmOp::Sltiu => 0b011,
                    IntImmOp::Xori => 0b100,
                    IntImmOp::Ori => 0b110,
                    IntImmOp::Andi => 0b111,
                    _ => unreachable!("shift handled above"),
                };
                enc_i(OP_IMM, funct3, rd.into(), rs1.into(), imm)?
            }
        },
        Inst::Op { op, rd, rs1, rs2 } => {
            let (f3, f7) = int_op_functs(op);
            enc_r(OP_OP, f3, f7, rd.into(), rs1.into(), rs2.into())
        }
        Inst::OpImmW { op, rd, rs1, imm } => match op {
            IntImmWOp::Addiw => enc_i(OP_IMM_32, 0b000, rd.into(), rs1.into(), imm)?,
            IntImmWOp::Slliw | IntImmWOp::Srliw | IntImmWOp::Sraiw => {
                if !(0..32).contains(&imm) {
                    return Err(EncodeError::ShiftAmountTooLarge {
                        value: imm,
                        max: 31,
                    });
                }
                let funct3 = if op == IntImmWOp::Slliw { 0b001 } else { 0b101 };
                let f7 = if op == IntImmWOp::Sraiw {
                    0b0100000u32
                } else {
                    0
                };
                enc_r(OP_IMM_32, funct3, f7, rd.into(), rs1.into(), imm as u32)
            }
        },
        Inst::OpW { op, rd, rs1, rs2 } => {
            let (f3, f7) = int_w_op_functs(op);
            enc_r(OP_OP_32, f3, f7, rd.into(), rs1.into(), rs2.into())
        }
        Inst::Lr { width, rd, rs1 } => {
            let f3 = if width == AmoWidth::W { 0b010 } else { 0b011 };
            enc_r(OP_AMO, f3, LR_FUNCT5 << 2, rd.into(), rs1.into(), 0)
        }
        Inst::Sc {
            width,
            rd,
            rs1,
            rs2,
        } => {
            let f3 = if width == AmoWidth::W { 0b010 } else { 0b011 };
            enc_r(
                OP_AMO,
                f3,
                SC_FUNCT5 << 2,
                rd.into(),
                rs1.into(),
                rs2.into(),
            )
        }
        Inst::Amo {
            op,
            width,
            rd,
            rs1,
            rs2,
        } => {
            let f3 = if width == AmoWidth::W { 0b010 } else { 0b011 };
            enc_r(
                OP_AMO,
                f3,
                amo_funct5(op) << 2,
                rd.into(),
                rs1.into(),
                rs2.into(),
            )
        }
        Inst::Csr { op, rd, src, csr } => {
            if src >= 32 {
                return Err(if op.is_immediate() {
                    EncodeError::CsrImmOutOfRange { value: src }
                } else {
                    EncodeError::RegIndexOutOfRange { index: src }
                });
            }
            (u32::from(csr) << 20)
                | (src << 15)
                | (csr_funct3(op) << 12)
                | (u32::from(rd) << 7)
                | OP_SYSTEM
        }
        Inst::Fld { rd, rs1, offset } => enc_i(OP_LOAD_FP, 0b011, rd.into(), rs1.into(), offset)?,
        Inst::Fsd { rs1, rs2, offset } => {
            enc_s(OP_STORE_FP, 0b011, rs1.into(), rs2.into(), offset)?
        }
        Inst::Fp { op, rd, rs1, rs2 } => {
            let (f7, f3) = fp_op_functs(op);
            enc_r(OP_OP_FP, f3, f7, rd.into(), rs1.into(), rs2.into())
        }
        Inst::FpSqrt { rd, rs1 } => enc_r(OP_OP_FP, RM_DYN, 0b0101101, rd.into(), rs1.into(), 0),
        Inst::Fma {
            op,
            rd,
            rs1,
            rs2,
            rs3,
        } => enc_r4(
            fma_opcode(op),
            0b01,
            RM_DYN,
            rd.into(),
            rs1.into(),
            rs2.into(),
            rs3.into(),
        ),
        Inst::FpCmp { op, rd, rs1, rs2 } => enc_r(
            OP_OP_FP,
            fp_cmp_funct3(op),
            0b1010001,
            rd.into(),
            rs1.into(),
            rs2.into(),
        ),
        Inst::FpCvt { op, rd, rs1 } => {
            let rd = check_reg_index(rd)?;
            let rs1 = check_reg_index(rs1)?;
            let (f7, rs2) = fp_cvt_functs(op);
            enc_r(OP_OP_FP, RM_DYN, f7, rd, rs1, rs2)
        }
        Inst::FmvXD { rd, rs1 } => enc_r(OP_OP_FP, 0b000, 0b1110001, rd.into(), rs1.into(), 0),
        Inst::FmvDX { rd, rs1 } => enc_r(OP_OP_FP, 0b000, 0b1111001, rd.into(), rs1.into(), 0),
        Inst::Fence => enc_i(OP_MISC_MEM, 0b000, 0, 0, 0)?,
        Inst::Ecall => enc_i(OP_SYSTEM, 0b000, 0, 0, 0)?,
        Inst::Ebreak => enc_i(OP_SYSTEM, 0b000, 0, 0, 1)?,
        Inst::Mret => enc_r(OP_SYSTEM, 0b000, 0b0011000, 0, 0, 0b00010),
        Inst::Wfi => enc_r(OP_SYSTEM, 0b000, 0b0001000, 0, 0, 0b00101),
        Inst::Flex { op, rd, rs1, rs2 } => enc_r(
            OP_CUSTOM0,
            0b000,
            flex_funct7(op),
            rd.into(),
            rs1.into(),
            rs2.into(),
        ),
    };
    Ok(word)
}

/// Convenience: encodes, panicking on malformed operands.
///
/// # Panics
///
/// Panics if [`encode`] fails; intended for statically known-good
/// instructions in tests and generators.
pub fn encode_unchecked(inst: &Inst) -> u32 {
    encode(inst).unwrap_or_else(|e| panic!("encode failed for {inst:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FReg, XReg};

    #[test]
    fn known_words_i_type() {
        // addi a0, a1, 42
        let i = Inst::OpImm {
            op: IntImmOp::Addi,
            rd: XReg::A0,
            rs1: XReg::A1,
            imm: 42,
        };
        assert_eq!(encode(&i).unwrap(), 0x02A5_8513);
    }

    #[test]
    fn known_words_u_j_types() {
        // lui a0, 0x12345
        let i = Inst::Lui {
            rd: XReg::A0,
            imm: 0x12345 << 12,
        };
        assert_eq!(encode(&i).unwrap(), 0x1234_5537);
        // jal ra, +8
        let i = Inst::Jal {
            rd: XReg::RA,
            offset: 8,
        };
        assert_eq!(encode(&i).unwrap(), 0x0080_00EF);
    }

    #[test]
    fn known_words_loads_stores() {
        // ld a0, 16(sp)
        let i = Inst::Load {
            op: LoadOp::Ld,
            rd: XReg::A0,
            rs1: XReg::SP,
            offset: 16,
        };
        assert_eq!(encode(&i).unwrap(), 0x0101_3503);
        // sd a0, 16(sp)
        let i = Inst::Store {
            op: StoreOp::Sd,
            rs1: XReg::SP,
            rs2: XReg::A0,
            offset: 16,
        };
        assert_eq!(encode(&i).unwrap(), 0x00A1_3823);
    }

    #[test]
    fn known_words_system() {
        assert_eq!(encode(&Inst::Ecall).unwrap(), 0x0000_0073);
        assert_eq!(encode(&Inst::Ebreak).unwrap(), 0x0010_0073);
        assert_eq!(encode(&Inst::Mret).unwrap(), 0x3020_0073);
        assert_eq!(encode(&Inst::Wfi).unwrap(), 0x1050_0073);
    }

    #[test]
    fn branch_offset_must_be_aligned() {
        let i = Inst::Branch {
            op: BranchOp::Eq,
            rs1: XReg::A0,
            rs2: XReg::A1,
            offset: 3,
        };
        assert_eq!(encode(&i), Err(EncodeError::MisalignedOffset { value: 3 }));
    }

    #[test]
    fn imm_range_enforced() {
        let i = Inst::OpImm {
            op: IntImmOp::Addi,
            rd: XReg::A0,
            rs1: XReg::A0,
            imm: 4096,
        };
        assert!(matches!(encode(&i), Err(EncodeError::ImmOutOfRange { .. })));
        let i = Inst::OpImm {
            op: IntImmOp::Addi,
            rd: XReg::A0,
            rs1: XReg::A0,
            imm: -2048,
        };
        assert!(encode(&i).is_ok());
    }

    #[test]
    fn shift_amount_range() {
        let i = Inst::OpImm {
            op: IntImmOp::Slli,
            rd: XReg::A0,
            rs1: XReg::A0,
            imm: 64,
        };
        assert!(matches!(
            encode(&i),
            Err(EncodeError::ShiftAmountTooLarge { .. })
        ));
        let i = Inst::OpImmW {
            op: IntImmWOp::Slliw,
            rd: XReg::A0,
            rs1: XReg::A0,
            imm: 32,
        };
        assert!(matches!(
            encode(&i),
            Err(EncodeError::ShiftAmountTooLarge { .. })
        ));
    }

    #[test]
    fn lui_rejects_low_bits() {
        let i = Inst::Lui {
            rd: XReg::A0,
            imm: 0x1001,
        };
        assert_eq!(
            encode(&i),
            Err(EncodeError::UnalignedUpperImm { value: 0x1001 })
        );
    }

    #[test]
    fn fp_cvt_validates_indices() {
        let i = Inst::FpCvt {
            op: FpCvtOp::DToL,
            rd: 32,
            rs1: 0,
        };
        assert_eq!(
            encode(&i),
            Err(EncodeError::RegIndexOutOfRange { index: 32 })
        );
    }

    #[test]
    fn csr_imm_range() {
        let i = Inst::Csr {
            op: CsrOp::Rwi,
            rd: XReg::A0,
            src: 32,
            csr: crate::csr::MEPC,
        };
        assert_eq!(encode(&i), Err(EncodeError::CsrImmOutOfRange { value: 32 }));
    }

    #[test]
    fn flex_ops_encode_in_custom0() {
        for op in FlexOp::ALL {
            let i = Inst::Flex {
                op,
                rd: XReg::A0,
                rs1: XReg::A1,
                rs2: XReg::A2,
            };
            let w = encode(&i).unwrap();
            assert_eq!(w & 0x7F, OP_CUSTOM0, "{op:?} not in custom-0");
        }
    }

    #[test]
    fn fsd_encodes_store_fp() {
        let i = Inst::Fsd {
            rs1: XReg::SP,
            rs2: FReg::of(1),
            offset: -8,
        };
        let w = encode(&i).unwrap();
        assert_eq!(w & 0x7F, OP_STORE_FP);
    }
}
