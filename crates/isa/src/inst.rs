//! The decoded instruction model.
//!
//! [`Inst`] covers the RV64IMA base that Rocket implements, a
//! double-precision floating-point subset (the evaluated Rocket
//! configuration has one FPU), the `Zicsr` system instructions, and the nine
//! FlexStep custom instructions of Tab. I of the paper.
//!
//! Instructions are grouped by format — e.g. all conditional branches share
//! the [`Inst::Branch`] variant parameterised by [`BranchOp`] — which keeps
//! the executor, encoder and decoder in one-to-one correspondence with the
//! RISC-V instruction formats (R/I/S/B/U/J/R4).

use crate::reg::{FReg, XReg};
use std::fmt;

/// Condition evaluated by a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// `beq`: branch if equal.
    Eq,
    /// `bne`: branch if not equal.
    Ne,
    /// `blt`: branch if signed less-than.
    Lt,
    /// `bge`: branch if signed greater-or-equal.
    Ge,
    /// `bltu`: branch if unsigned less-than.
    Ltu,
    /// `bgeu`: branch if unsigned greater-or-equal.
    Geu,
}

/// Width and sign-extension behaviour of an integer load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// `lb`: signed byte.
    Lb,
    /// `lh`: signed half-word.
    Lh,
    /// `lw`: signed word.
    Lw,
    /// `ld`: double word.
    Ld,
    /// `lbu`: unsigned byte.
    Lbu,
    /// `lhu`: unsigned half-word.
    Lhu,
    /// `lwu`: unsigned word.
    Lwu,
}

impl LoadOp {
    /// Access size in bytes.
    pub fn size(self) -> u8 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw | LoadOp::Lwu => 4,
            LoadOp::Ld => 8,
        }
    }

    /// Whether the loaded value is sign-extended to 64 bits.
    pub fn is_signed(self) -> bool {
        matches!(self, LoadOp::Lb | LoadOp::Lh | LoadOp::Lw | LoadOp::Ld)
    }
}

/// Width of an integer store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// `sb`: byte.
    Sb,
    /// `sh`: half-word.
    Sh,
    /// `sw`: word.
    Sw,
    /// `sd`: double word.
    Sd,
}

impl StoreOp {
    /// Access size in bytes.
    pub fn size(self) -> u8 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
            StoreOp::Sd => 8,
        }
    }
}

/// Register-register integer operation (RV64I plus the M extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntOp {
    /// `add`.
    Add,
    /// `sub`.
    Sub,
    /// `sll`: shift left logical.
    Sll,
    /// `slt`: set if signed less-than.
    Slt,
    /// `sltu`: set if unsigned less-than.
    Sltu,
    /// `xor`.
    Xor,
    /// `srl`: shift right logical.
    Srl,
    /// `sra`: shift right arithmetic.
    Sra,
    /// `or`.
    Or,
    /// `and`.
    And,
    /// `mul` (M extension).
    Mul,
    /// `mulh`: upper 64 bits of signed×signed (M extension).
    Mulh,
    /// `mulhsu`: upper 64 bits of signed×unsigned (M extension).
    Mulhsu,
    /// `mulhu`: upper 64 bits of unsigned×unsigned (M extension).
    Mulhu,
    /// `div`: signed division (M extension).
    Div,
    /// `divu`: unsigned division (M extension).
    Divu,
    /// `rem`: signed remainder (M extension).
    Rem,
    /// `remu`: unsigned remainder (M extension).
    Remu,
}

impl IntOp {
    /// Whether this operation belongs to the M (multiply/divide) extension.
    pub fn is_muldiv(self) -> bool {
        matches!(
            self,
            IntOp::Mul
                | IntOp::Mulh
                | IntOp::Mulhsu
                | IntOp::Mulhu
                | IntOp::Div
                | IntOp::Divu
                | IntOp::Rem
                | IntOp::Remu
        )
    }
}

/// Register-immediate integer operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntImmOp {
    /// `addi`.
    Addi,
    /// `slti`.
    Slti,
    /// `sltiu`.
    Sltiu,
    /// `xori`.
    Xori,
    /// `ori`.
    Ori,
    /// `andi`.
    Andi,
    /// `slli` (6-bit shift amount on RV64).
    Slli,
    /// `srli`.
    Srli,
    /// `srai`.
    Srai,
}

/// 32-bit ("word") register-register operation, result sign-extended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntWOp {
    /// `addw`.
    Addw,
    /// `subw`.
    Subw,
    /// `sllw`.
    Sllw,
    /// `srlw`.
    Srlw,
    /// `sraw`.
    Sraw,
    /// `mulw` (M extension).
    Mulw,
    /// `divw` (M extension).
    Divw,
    /// `divuw` (M extension).
    Divuw,
    /// `remw` (M extension).
    Remw,
    /// `remuw` (M extension).
    Remuw,
}

/// 32-bit ("word") register-immediate operation, result sign-extended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntImmWOp {
    /// `addiw`.
    Addiw,
    /// `slliw` (5-bit shift amount).
    Slliw,
    /// `srliw`.
    Srliw,
    /// `sraiw`.
    Sraiw,
}

/// Atomic read-modify-write operation (A extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// `amoswap`.
    Swap,
    /// `amoadd`.
    Add,
    /// `amoxor`.
    Xor,
    /// `amoand`.
    And,
    /// `amoor`.
    Or,
    /// `amomin` (signed).
    Min,
    /// `amomax` (signed).
    Max,
    /// `amominu` (unsigned).
    Minu,
    /// `amomaxu` (unsigned).
    Maxu,
}

/// Operand width of an atomic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoWidth {
    /// 32-bit, result sign-extended.
    W,
    /// 64-bit.
    D,
}

impl AmoWidth {
    /// Access size in bytes.
    pub fn size(self) -> u8 {
        match self {
            AmoWidth::W => 4,
            AmoWidth::D => 8,
        }
    }
}

/// CSR access operation (`Zicsr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// `csrrw`: atomic read/write.
    Rw,
    /// `csrrs`: atomic read and set bits.
    Rs,
    /// `csrrc`: atomic read and clear bits.
    Rc,
    /// `csrrwi`: immediate read/write.
    Rwi,
    /// `csrrsi`: immediate read and set bits.
    Rsi,
    /// `csrrci`: immediate read and clear bits.
    Rci,
}

impl CsrOp {
    /// Whether the source operand is a 5-bit immediate rather than `rs1`.
    pub fn is_immediate(self) -> bool {
        matches!(self, CsrOp::Rwi | CsrOp::Rsi | CsrOp::Rci)
    }
}

/// Two-operand double-precision floating-point computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// `fadd.d`.
    Add,
    /// `fsub.d`.
    Sub,
    /// `fmul.d`.
    Mul,
    /// `fdiv.d`.
    Div,
    /// `fsgnj.d`: copy sign.
    SgnJ,
    /// `fsgnjn.d`: copy negated sign.
    SgnJN,
    /// `fsgnjx.d`: xor signs.
    SgnJX,
    /// `fmin.d`.
    Min,
    /// `fmax.d`.
    Max,
}

/// Double-precision comparison writing an integer register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCmpOp {
    /// `feq.d`.
    Eq,
    /// `flt.d`.
    Lt,
    /// `fle.d`.
    Le,
}

/// Fused multiply-add family (R4-format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FmaOp {
    /// `fmadd.d`: `rs1*rs2 + rs3`.
    Madd,
    /// `fmsub.d`: `rs1*rs2 - rs3`.
    Msub,
    /// `fnmsub.d`: `-(rs1*rs2) + rs3`.
    Nmsub,
    /// `fnmadd.d`: `-(rs1*rs2) - rs3`.
    Nmadd,
}

/// Conversion between integer and double-precision values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCvtOp {
    /// `fcvt.l.d`: double → signed 64-bit integer.
    DToL,
    /// `fcvt.lu.d`: double → unsigned 64-bit integer.
    DToLu,
    /// `fcvt.d.l`: signed 64-bit integer → double.
    LToD,
    /// `fcvt.d.lu`: unsigned 64-bit integer → double.
    LuToD,
    /// `fcvt.w.d`: double → signed 32-bit integer (sign-extended).
    DToW,
    /// `fcvt.d.w`: signed 32-bit integer → double.
    WToD,
}

impl FpCvtOp {
    /// Whether the destination is an integer (x) register.
    pub fn writes_xreg(self) -> bool {
        matches!(self, FpCvtOp::DToL | FpCvtOp::DToLu | FpCvtOp::DToW)
    }
}

/// The FlexStep custom ISA of Tab. I, encoded in the *custom-0* opcode space.
///
/// These instructions form the control interface between the OS scheduler
/// and the error-detection hardware. Their architectural semantics live in
/// `flexstep-core`; at the ISA level they are ordinary R-type instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlexOp {
    /// `G.IDs.contain` — return the queried core's attribute
    /// (main / checker / compute).
    GIdsContain,
    /// `G.Configure` — write main/checker core IDs into the global
    /// configuration registers.
    GConfigure,
    /// `M.associate` — allocate one or more checker cores to this main core.
    MAssociate,
    /// `M.check` — enable or disable the checking function.
    MCheck,
    /// `C.check_state` — switch the checker state between busy and idle.
    CCheckState,
    /// `C.record` — record the current context into the ASS.
    CRecord,
    /// `C.apply` — apply the pending SCP from the data channel.
    CApply,
    /// `C.jal` — jump to the SCP's next-pc, starting replay.
    CJal,
    /// `C.result` — return the comparison result for the last segment.
    CResult,
}

impl FlexOp {
    /// All nine operations, in Tab. I order.
    pub const ALL: [FlexOp; 9] = [
        FlexOp::GIdsContain,
        FlexOp::GConfigure,
        FlexOp::MAssociate,
        FlexOp::MCheck,
        FlexOp::CCheckState,
        FlexOp::CRecord,
        FlexOp::CApply,
        FlexOp::CJal,
        FlexOp::CResult,
    ];

    /// The assembly mnemonic used by the paper (Tab. I).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FlexOp::GIdsContain => "g.ids.contain",
            FlexOp::GConfigure => "g.configure",
            FlexOp::MAssociate => "m.associate",
            FlexOp::MCheck => "m.check",
            FlexOp::CCheckState => "c.check_state",
            FlexOp::CRecord => "c.record",
            FlexOp::CApply => "c.apply",
            FlexOp::CJal => "c.jal",
            FlexOp::CResult => "c.result",
        }
    }
}

/// A decoded instruction.
///
/// The variants are grouped by instruction format; see the module
/// documentation. All immediates are stored fully sign-extended, exactly as
/// the executor consumes them.
///
/// Field names follow the RISC-V assembly conventions throughout and are
/// deliberately left without per-field doc comments: `rd` is the
/// destination register, `rs1`/`rs2`/`rs3` the sources, `imm` an
/// immediate operand, `offset` a pc-relative or addressing displacement,
/// `op` the operation selector within the format, and `width` an access
/// width.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `lui rd, imm`: load upper immediate (`imm` is the final 32-bit
    /// sign-extended value, i.e. already shifted left by 12).
    Lui { rd: XReg, imm: i64 },
    /// `auipc rd, imm`: add upper immediate to pc.
    Auipc { rd: XReg, imm: i64 },
    /// `jal rd, offset`: jump and link.
    Jal { rd: XReg, offset: i64 },
    /// `jalr rd, offset(rs1)`: indirect jump and link.
    Jalr { rd: XReg, rs1: XReg, offset: i64 },
    /// Conditional branch.
    Branch {
        op: BranchOp,
        rs1: XReg,
        rs2: XReg,
        offset: i64,
    },
    /// Integer load.
    Load {
        op: LoadOp,
        rd: XReg,
        rs1: XReg,
        offset: i64,
    },
    /// Integer store.
    Store {
        op: StoreOp,
        rs1: XReg,
        rs2: XReg,
        offset: i64,
    },
    /// Register-immediate ALU operation.
    OpImm {
        op: IntImmOp,
        rd: XReg,
        rs1: XReg,
        imm: i64,
    },
    /// Register-register ALU operation.
    Op {
        op: IntOp,
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
    /// 32-bit register-immediate ALU operation.
    OpImmW {
        op: IntImmWOp,
        rd: XReg,
        rs1: XReg,
        imm: i64,
    },
    /// 32-bit register-register ALU operation.
    OpW {
        op: IntWOp,
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
    /// `lr.w`/`lr.d`: load-reserved.
    Lr {
        width: AmoWidth,
        rd: XReg,
        rs1: XReg,
    },
    /// `sc.w`/`sc.d`: store-conditional.
    Sc {
        width: AmoWidth,
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
    /// Atomic read-modify-write.
    Amo {
        op: AmoOp,
        width: AmoWidth,
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
    /// CSR access; `src` is `rs1` for register forms and the zero-extended
    /// 5-bit immediate for the `*i` forms.
    Csr {
        op: CsrOp,
        rd: XReg,
        src: u32,
        csr: u16,
    },
    /// `fld rd, offset(rs1)`: double-precision load.
    Fld { rd: FReg, rs1: XReg, offset: i64 },
    /// `fsd rs2, offset(rs1)`: double-precision store.
    Fsd { rs1: XReg, rs2: FReg, offset: i64 },
    /// Two-operand double-precision computation.
    Fp {
        op: FpOp,
        rd: FReg,
        rs1: FReg,
        rs2: FReg,
    },
    /// `fsqrt.d`.
    FpSqrt { rd: FReg, rs1: FReg },
    /// Fused multiply-add family.
    Fma {
        op: FmaOp,
        rd: FReg,
        rs1: FReg,
        rs2: FReg,
        rs3: FReg,
    },
    /// Double-precision comparison into an integer register.
    FpCmp {
        op: FpCmpOp,
        rd: XReg,
        rs1: FReg,
        rs2: FReg,
    },
    /// Integer/double conversions.
    FpCvt { op: FpCvtOp, rd: u32, rs1: u32 },
    /// `fmv.x.d rd, rs1`: move raw bits f→x.
    FmvXD { rd: XReg, rs1: FReg },
    /// `fmv.d.x rd, rs1`: move raw bits x→f.
    FmvDX { rd: FReg, rs1: XReg },
    /// `fence`: memory ordering (a timing no-op on this in-order core).
    Fence,
    /// `ecall`: environment call into the kernel.
    Ecall,
    /// `ebreak`: breakpoint trap.
    Ebreak,
    /// `mret`: return from machine-mode trap handler.
    Mret,
    /// `wfi`: wait for interrupt.
    Wfi,
    /// FlexStep custom instruction (Tab. I).
    Flex {
        op: FlexOp,
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
}

impl Inst {
    /// A canonical `nop` (`addi x0, x0, 0`).
    pub const NOP: Inst = Inst::OpImm {
        op: IntImmOp::Addi,
        rd: XReg::ZERO,
        rs1: XReg::ZERO,
        imm: 0,
    };

    /// Returns `true` for instructions that perform a data-memory access
    /// (the accesses the Memory Access Log captures).
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::Lr { .. }
                | Inst::Sc { .. }
                | Inst::Amo { .. }
                | Inst::Fld { .. }
                | Inst::Fsd { .. }
        )
    }

    /// Returns `true` for atomic-class instructions (LR/SC/AMO), which the
    /// MAL packages into multiple log entries (§III-B).
    pub fn is_atomic(&self) -> bool {
        matches!(self, Inst::Lr { .. } | Inst::Sc { .. } | Inst::Amo { .. })
    }

    /// Returns `true` for control-flow instructions (branches and jumps).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. }
        )
    }

    /// Returns `true` for floating-point instructions.
    pub fn is_fp(&self) -> bool {
        matches!(
            self,
            Inst::Fld { .. }
                | Inst::Fsd { .. }
                | Inst::Fp { .. }
                | Inst::FpSqrt { .. }
                | Inst::Fma { .. }
                | Inst::FpCmp { .. }
                | Inst::FpCvt { .. }
                | Inst::FmvXD { .. }
                | Inst::FmvDX { .. }
        )
    }

    /// Returns `true` for system-class instructions that may change
    /// privilege level (the CPC's privilege monitor watches these).
    pub fn is_system(&self) -> bool {
        matches!(
            self,
            Inst::Ecall | Inst::Ebreak | Inst::Mret | Inst::Wfi | Inst::Csr { .. }
        )
    }

    /// The integer destination register written by this instruction, if any.
    /// `x0` destinations are reported as `None` (the write has no effect).
    pub fn writes_xreg(&self) -> Option<XReg> {
        let rd = match *self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::OpImm { rd, .. }
            | Inst::Op { rd, .. }
            | Inst::OpImmW { rd, .. }
            | Inst::OpW { rd, .. }
            | Inst::Lr { rd, .. }
            | Inst::Sc { rd, .. }
            | Inst::Amo { rd, .. }
            | Inst::Csr { rd, .. }
            | Inst::FpCmp { rd, .. }
            | Inst::FmvXD { rd, .. }
            | Inst::Flex { rd, .. } => rd,
            Inst::FpCvt { op, rd, .. } if op.writes_xreg() => XReg::of(rd),
            _ => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// The integer source registers read by this instruction (up to two).
    pub fn reads_xregs(&self) -> (Option<XReg>, Option<XReg>) {
        fn some(r: XReg) -> Option<XReg> {
            (!r.is_zero()).then_some(r)
        }
        match *self {
            Inst::Jalr { rs1, .. }
            | Inst::Load { rs1, .. }
            | Inst::OpImm { rs1, .. }
            | Inst::OpImmW { rs1, .. }
            | Inst::Lr { rs1, .. }
            | Inst::Fld { rs1, .. }
            | Inst::FmvDX { rs1, .. } => (some(rs1), None),
            Inst::Fsd { rs1, .. } => (some(rs1), None),
            Inst::Branch { rs1, rs2, .. }
            | Inst::Store { rs1, rs2, .. }
            | Inst::Op { rs1, rs2, .. }
            | Inst::OpW { rs1, rs2, .. }
            | Inst::Sc { rs1, rs2, .. }
            | Inst::Amo { rs1, rs2, .. }
            | Inst::Flex { rs1, rs2, .. } => (some(rs1), some(rs2)),
            Inst::Csr { op, src, .. } if !op.is_immediate() => (some(XReg::of(src)), None),
            Inst::FpCvt { op, rs1, .. } if !op.writes_xreg() => (some(XReg::of(rs1)), None),
            _ => (None, None),
        }
    }

    /// A coarse classification used by instruction-mix statistics.
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Load { .. } | Inst::Fld { .. } | Inst::Lr { .. } => InstClass::Load,
            Inst::Store { .. } | Inst::Fsd { .. } | Inst::Sc { .. } => InstClass::Store,
            Inst::Amo { .. } => InstClass::Atomic,
            Inst::Branch { .. } => InstClass::Branch,
            Inst::Jal { .. } | Inst::Jalr { .. } => InstClass::Jump,
            Inst::Op { op, .. } if op.is_muldiv() => InstClass::MulDiv,
            Inst::OpW {
                op: IntWOp::Mulw | IntWOp::Divw | IntWOp::Divuw | IntWOp::Remw | IntWOp::Remuw,
                ..
            } => InstClass::MulDiv,
            i if i.is_fp() => InstClass::Fp,
            i if i.is_system() => InstClass::System,
            Inst::Flex { .. } => InstClass::Flex,
            _ => InstClass::Alu,
        }
    }
}

/// Coarse instruction classification for mix statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Simple integer ALU work.
    Alu,
    /// Integer multiply/divide.
    MulDiv,
    /// Memory read (including `fld` and `lr`).
    Load,
    /// Memory write (including `fsd` and `sc`).
    Store,
    /// Atomic read-modify-write.
    Atomic,
    /// Conditional branch.
    Branch,
    /// Unconditional jump.
    Jump,
    /// Floating-point computation.
    Fp,
    /// System / CSR instruction.
    System,
    /// FlexStep custom instruction.
    Flex,
}

impl InstClass {
    /// All classes, for iteration in statistics tables.
    pub const ALL: [InstClass; 10] = [
        InstClass::Alu,
        InstClass::MulDiv,
        InstClass::Load,
        InstClass::Store,
        InstClass::Atomic,
        InstClass::Branch,
        InstClass::Jump,
        InstClass::Fp,
        InstClass::System,
        InstClass::Flex,
    ];
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstClass::Alu => "alu",
            InstClass::MulDiv => "muldiv",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::Atomic => "atomic",
            InstClass::Branch => "branch",
            InstClass::Jump => "jump",
            InstClass::Fp => "fp",
            InstClass::System => "system",
            InstClass::Flex => "flex",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_is_addi_x0() {
        assert_eq!(
            Inst::NOP,
            Inst::OpImm {
                op: IntImmOp::Addi,
                rd: XReg::ZERO,
                rs1: XReg::ZERO,
                imm: 0
            }
        );
        assert_eq!(Inst::NOP.writes_xreg(), None);
    }

    #[test]
    fn mem_classification() {
        let ld = Inst::Load {
            op: LoadOp::Ld,
            rd: XReg::A0,
            rs1: XReg::SP,
            offset: 8,
        };
        assert!(ld.is_mem());
        assert!(!ld.is_atomic());
        assert_eq!(ld.class(), InstClass::Load);

        let amo = Inst::Amo {
            op: AmoOp::Add,
            width: AmoWidth::D,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        };
        assert!(amo.is_mem());
        assert!(amo.is_atomic());
        assert_eq!(amo.class(), InstClass::Atomic);
    }

    #[test]
    fn writes_xreg_skips_x0() {
        let i = Inst::Op {
            op: IntOp::Add,
            rd: XReg::ZERO,
            rs1: XReg::A0,
            rs2: XReg::A1,
        };
        assert_eq!(i.writes_xreg(), None);
        let i = Inst::Op {
            op: IntOp::Add,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        };
        assert_eq!(i.writes_xreg(), Some(XReg::A0));
    }

    #[test]
    fn fcvt_destination_register_file() {
        let to_int = Inst::FpCvt {
            op: FpCvtOp::DToL,
            rd: 10,
            rs1: 3,
        };
        assert_eq!(to_int.writes_xreg(), Some(XReg::A0));
        let to_fp = Inst::FpCvt {
            op: FpCvtOp::LToD,
            rd: 3,
            rs1: 10,
        };
        assert_eq!(to_fp.writes_xreg(), None);
        assert_eq!(to_fp.reads_xregs().0, Some(XReg::A0));
    }

    #[test]
    fn load_op_sizes() {
        assert_eq!(LoadOp::Lb.size(), 1);
        assert_eq!(LoadOp::Lhu.size(), 2);
        assert_eq!(LoadOp::Lwu.size(), 4);
        assert_eq!(LoadOp::Ld.size(), 8);
        assert!(LoadOp::Lw.is_signed());
        assert!(!LoadOp::Lwu.is_signed());
    }

    #[test]
    fn flex_ops_have_paper_mnemonics() {
        assert_eq!(FlexOp::ALL.len(), 9);
        assert_eq!(FlexOp::GIdsContain.mnemonic(), "g.ids.contain");
        assert_eq!(FlexOp::CCheckState.mnemonic(), "c.check_state");
    }

    #[test]
    fn system_instructions_flagged() {
        assert!(Inst::Ecall.is_system());
        assert!(Inst::Mret.is_system());
        assert!(!Inst::NOP.is_system());
    }

    #[test]
    fn reads_xregs_for_store() {
        let st = Inst::Store {
            op: StoreOp::Sd,
            rs1: XReg::SP,
            rs2: XReg::A0,
            offset: 0,
        };
        assert_eq!(st.reads_xregs(), (Some(XReg::SP), Some(XReg::A0)));
    }

    #[test]
    fn class_covers_muldiv_words() {
        let i = Inst::OpW {
            op: IntWOp::Mulw,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        };
        assert_eq!(i.class(), InstClass::MulDiv);
        let i = Inst::OpW {
            op: IntWOp::Addw,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        };
        assert_eq!(i.class(), InstClass::Alu);
    }
}
