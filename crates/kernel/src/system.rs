//! The kernel: boot, job release, partitioned-EDF dispatch with the
//! Al. 1 context switch, the Al. 2 checker thread, and metrics.
//!
//! The kernel runs at host level (it *is* the machine-mode software of the
//! platform): traps surface from the simulator, the kernel manipulates
//! core state directly and charges kernel-time stalls, exactly as the
//! paper's OS add-ons do through the trap path and the Tab. I custom ISA.

use crate::edf::EdfQueue;
use crate::task::{Job, JobState, TaskBody, TaskClass, TaskDef, TaskId, Tcb};
use crate::trace::{Trace, TraceEvent};
use flexstep_core::{CoreAttr, DetectionEvent, EngineStep, FabricConfig, FlexError, FlexSoc};
use flexstep_sim::{ArchState, PrivMode, SocConfig, StepKind, TrapCause};
use std::collections::BTreeMap;
use std::fmt;

/// Kernel configuration.
#[derive(Debug, Clone, Copy)]
pub struct KernelConfig {
    /// Cycles charged for a context switch (Al. 1).
    pub context_switch_cycles: u64,
    /// Cycles charged for trap entry/exit (timer tick, `ecall`).
    pub trap_cycles: u64,
    /// When a busy checker finds its stream empty and other work is
    /// ready, yield the core (asynchronous checking).
    pub checker_yield: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            context_switch_cycles: 300,
            trap_cycles: 120,
            checker_yield: true,
        }
    }
}

/// Kernel-level configuration errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A task references a core outside the SoC.
    CoreOutOfRange {
        /// The offending core index.
        core: usize,
    },
    /// Duplicate task id.
    DuplicateTask {
        /// The duplicated id.
        id: TaskId,
    },
    /// A verified task lists no checker cores.
    NoCheckers {
        /// The offending task.
        id: TaskId,
    },
    /// The referenced task does not exist.
    UnknownTask {
        /// The missing id.
        id: TaskId,
    },
    /// Checking demand can only be set on verification tasks.
    NotVerified {
        /// The offending task.
        id: TaskId,
    },
    /// Verified tasks sharing a main core must use the same checker set
    /// (the association is a per-core channel).
    CheckerSetConflict {
        /// The main core with conflicting sets.
        core: usize,
    },
    /// A checker core is also used as a main core.
    RoleConflict {
        /// The conflicted core.
        core: usize,
    },
    /// Underlying fabric error during boot.
    Fabric(FlexError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::CoreOutOfRange { core } => write!(f, "core {core} out of range"),
            KernelError::DuplicateTask { id } => write!(f, "duplicate task {id}"),
            KernelError::NoCheckers { id } => write!(f, "verified task {id} has no checkers"),
            KernelError::UnknownTask { id } => write!(f, "no such task {id}"),
            KernelError::NotVerified { id } => {
                write!(f, "task {id} is not a verification task")
            }
            KernelError::CheckerSetConflict { core } => {
                write!(f, "verified tasks on core {core} disagree on checker cores")
            }
            KernelError::RoleConflict { core } => {
                write!(f, "core {core} used as both main and checker")
            }
            KernelError::Fabric(e) => write!(f, "fabric: {e}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<FlexError> for KernelError {
    fn from(e: FlexError) -> Self {
        KernelError::Fabric(e)
    }
}

/// Which jobs of a verification task actually need checking (§V: "the
/// system dynamically triggers additional error checking for one or more
/// jobs of specific verification tasks based on the nature of the
/// emergency").
///
/// A task's [`TaskClass`] states what it *may* require; the demand states
/// what the current emergency *does* require. The default for verified
/// tasks is [`CheckDemand::Always`] — the worst case §V analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckDemand {
    /// Every job is checked.
    Always,
    /// No job is checked (the emergency has passed).
    Never,
    /// Jobs `from..until` (0-based indices) are checked.
    Window {
        /// First checked job index.
        from: u64,
        /// One past the last checked job index.
        until: u64,
    },
}

impl CheckDemand {
    /// Whether job `k` requires checking under this demand.
    pub fn covers(&self, k: u64) -> bool {
        match *self {
            CheckDemand::Always => true,
            CheckDemand::Never => false,
            CheckDemand::Window { from, until } => (from..until).contains(&k),
        }
    }
}

/// Per-task summary at the end of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSummary {
    /// The task.
    pub id: TaskId,
    /// Name.
    pub name: String,
    /// Jobs released.
    pub released: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Deadline misses.
    pub misses: u64,
    /// Mean response time (cycles).
    pub mean_response: f64,
    /// Max response time (cycles).
    pub max_response: u64,
}

/// Run summary.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Final cycle.
    pub finished_at: u64,
    /// Per-task summaries, by id.
    pub tasks: Vec<TaskSummary>,
    /// Error detections reported by checkers.
    pub detections: Vec<DetectionEvent>,
}

impl RunSummary {
    /// Total deadline misses across tasks.
    pub fn total_misses(&self) -> u64 {
        self.tasks.iter().map(|t| t.misses).sum()
    }

    /// Summary of one task.
    pub fn task(&self, id: TaskId) -> Option<&TaskSummary> {
        self.tasks.iter().find(|t| t.id == id)
    }
}

/// The FlexStep kernel over a [`FlexSoc`].
pub struct System {
    /// The platform (kernel-internal; use the accessor methods).
    pub(crate) fs: FlexSoc,
    cfg: KernelConfig,
    tasks: BTreeMap<TaskId, Tcb>,
    /// Checker-thread task ids generated for verified tasks:
    /// `(verified task, checker core) -> checker task`.
    verif_threads: BTreeMap<(TaskId, usize), TaskId>,
    /// Reverse: checker task -> verified task.
    verif_of: BTreeMap<TaskId, TaskId>,
    /// Selective-checking demand per verified task (absent = `Always`).
    demands: BTreeMap<TaskId, CheckDemand>,
    queues: Vec<EdfQueue>,
    running: Vec<Option<TaskId>>,
    booted: bool,
    /// The scheduling trace.
    pub trace: Trace,
    detections: Vec<DetectionEvent>,
    next_auto_id: u32,
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("tasks", &self.tasks.len())
            .field("now", &self.fs.soc.now())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Creates a kernel over a fresh platform.
    ///
    /// # Panics
    ///
    /// Panics if the SoC configuration is invalid.
    pub fn new(soc: SocConfig, fabric: FabricConfig, cfg: KernelConfig) -> Self {
        let fs = FlexSoc::new(soc, fabric).expect("valid SoC configuration");
        let n = fs.soc.num_cores();
        System {
            fs,
            cfg,
            tasks: BTreeMap::new(),
            verif_threads: BTreeMap::new(),
            verif_of: BTreeMap::new(),
            demands: BTreeMap::new(),
            queues: (0..n).map(|_| EdfQueue::new()).collect(),
            running: vec![None; n],
            booted: false,
            trace: Trace::new(),
            detections: Vec::new(),
            next_auto_id: 0x8000_0000,
        }
    }

    /// The current cycle.
    pub fn now(&self) -> u64 {
        self.fs.soc.now()
    }

    /// The underlying simulator (cores, memory).
    pub fn soc(&self) -> &flexstep_sim::Soc {
        &self.fs.soc
    }

    /// The FlexStep fabric state (FIFOs, stats).
    pub fn fabric(&self) -> &flexstep_core::Fabric {
        &self.fs.fabric
    }

    /// Mutable fabric access (fault-injection experiments).
    pub fn fabric_mut(&mut self) -> &mut flexstep_core::Fabric {
        &mut self.fs.fabric
    }

    /// Checker-role state of a core.
    pub fn checker_state(&self, core: usize) -> &flexstep_core::CheckerState {
        self.fs.checker_state(core)
    }

    /// Adds a task. Verified tasks automatically get one checker-thread
    /// task per checker core, released in lockstep with their jobs and
    /// sharing their deadlines (§V: duplicated computations use the
    /// original deadline).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] for invalid configurations.
    pub fn add_task(&mut self, def: TaskDef) -> Result<TaskId, KernelError> {
        let n = self.fs.soc.num_cores();
        if def.core >= n {
            return Err(KernelError::CoreOutOfRange { core: def.core });
        }
        for &c in &def.checkers {
            if c >= n {
                return Err(KernelError::CoreOutOfRange { core: c });
            }
        }
        if self.tasks.contains_key(&def.id) {
            return Err(KernelError::DuplicateTask { id: def.id });
        }
        if def.is_verified() && def.checkers.len() < def.class.redundancy() {
            // Double-check needs ≥1 checker, triple-check ≥2. More than
            // required is allowed — the DBC channel supports "one-to-two,
            // or more" modes, and a shared per-core channel may carry
            // higher redundancy than one of its tasks strictly needs.
            return Err(KernelError::NoCheckers { id: def.id });
        }
        let id = def.id;
        if def.is_verified() {
            for &checker_core in &def.checkers {
                let cid = TaskId(self.next_auto_id);
                self.next_auto_id += 1;
                let cdef = TaskDef {
                    id: cid,
                    name: format!("{}✓@{}", def.name, checker_core),
                    class: TaskClass::Normal,
                    body: TaskBody::CheckerThread {
                        main_core: def.core,
                    },
                    period: def.period,
                    phase: def.phase,
                    core: checker_core,
                    checkers: vec![],
                    max_jobs: def.max_jobs,
                };
                self.verif_threads.insert((id, checker_core), cid);
                self.verif_of.insert(cid, id);
                self.tasks.insert(cid, Tcb::new(cdef));
            }
        }
        self.tasks.insert(id, Tcb::new(def));
        Ok(id)
    }

    /// Boots the system: loads guest programs, configures core attributes
    /// and associations (`G.Configure`, `M.associate`), and arms timers.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] for inconsistent role assignments.
    pub fn boot(&mut self) -> Result<(), KernelError> {
        // Derive roles from the task set.
        let mut mains: Vec<usize> = Vec::new();
        let mut checkers: Vec<usize> = Vec::new();
        let mut assoc: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for tcb in self.tasks.values() {
            if tcb.def.is_verified() {
                if !mains.contains(&tcb.def.core) {
                    mains.push(tcb.def.core);
                }
                let entry = assoc.entry(tcb.def.core).or_default();
                if entry.is_empty() {
                    entry.clone_from(&tcb.def.checkers);
                } else if *entry != tcb.def.checkers {
                    return Err(KernelError::CheckerSetConflict { core: tcb.def.core });
                }
                for &c in &tcb.def.checkers {
                    if !checkers.contains(&c) {
                        checkers.push(c);
                    }
                }
            }
        }
        for &c in &checkers {
            if mains.contains(&c) {
                return Err(KernelError::RoleConflict { core: c });
            }
        }
        self.fs.op_g_configure(&mains, &checkers)?;
        for (&main, set) in &assoc {
            self.fs.op_m_associate(main, set)?;
        }
        // Load guest programs.
        let programs: Vec<_> = self
            .tasks
            .values()
            .filter_map(|t| match &t.def.body {
                TaskBody::Guest(p) => Some(p.clone()),
                TaskBody::CheckerThread { .. } => None,
            })
            .collect();
        for p in programs {
            self.fs.soc.load_program(&p);
        }
        self.booted = true;
        self.rearm_timers();
        Ok(())
    }

    /// The next event time: earliest pending release.
    fn next_release_time(&self) -> Option<u64> {
        self.tasks.values().filter_map(Tcb::next_release).min()
    }

    fn rearm_timers(&mut self) {
        // Each core's timer fires at the next release of a task
        // partitioned onto it (preemption point).
        for core in 0..self.fs.soc.num_cores() {
            let next: Option<u64> = self
                .tasks
                .values()
                .filter(|t| t.def.core == core)
                .filter_map(Tcb::next_release)
                .min();
            match next {
                Some(t) => self.fs.soc.core_mut(core).set_timer(t),
                None => self.fs.soc.core_mut(core).clear_timer(),
            }
        }
    }

    /// Releases all jobs due at or before `now`.
    fn release_due_jobs(&mut self, now: u64) {
        let due: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|(_, t)| t.next_release().is_some_and(|r| r <= now))
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            let tcb = self.tasks.get_mut(&id).expect("listed above");
            let k = tcb.next_release_idx;
            let release = tcb.def.release_of(k);
            let deadline = tcb.def.deadline_of(k);
            tcb.next_release_idx += 1;

            // Selective checking: a checker-thread job is released only
            // when the verified task's demand covers this job index; the
            // verified task's own release latches the same decision for
            // its dispatch (both release at the same instant, so one
            // demand value governs the pair).
            if let Some(&orig) = self.verif_of.get(&id) {
                if !self.demand_of(orig).covers(k) {
                    continue;
                }
            }

            // Overrun: the previous job is still live.
            let tcb = self.tasks.get_mut(&id).expect("exists");
            if let Some(old) = tcb.live_job.take() {
                if old.state != JobState::Done {
                    tcb.misses += 1;
                    let old_k = old.k;
                    self.trace
                        .push(now, TraceEvent::DeadlineMiss { task: id, k: old_k });
                    // Abandon the overrun job: remove it from queues and,
                    // if running, evict it.
                    self.queues[self.tasks[&id].def.core].remove(id, old.deadline);
                    let core = self.tasks[&id].def.core;
                    if self.running[core] == Some(id) {
                        self.running[core] = None;
                    }
                    let tcb = self.tasks.get_mut(&id).expect("exists");
                    tcb.context = None;
                }
            }

            let demanded = self.demand_of(id).covers(k);
            let tcb = self.tasks.get_mut(&id).expect("exists");
            tcb.live_job = Some(Job {
                task: id,
                k,
                release,
                deadline,
                state: JobState::Ready,
                finished_at: None,
            });
            tcb.check_demanded = demanded;
            tcb.context = None; // fresh job starts from the entry point
            let core = tcb.def.core;
            self.queues[core].insert(id, deadline);
            self.trace.push(
                now,
                TraceEvent::Release {
                    task: id,
                    k,
                    deadline,
                },
            );
        }
        if !self.queues.is_empty() {
            self.rearm_timers();
        }
    }

    /// Performs the Al. 1 context switch on `core` when EDF demands it.
    fn schedule_core(&mut self, core: usize) {
        let running_deadline =
            self.running[core].and_then(|id| self.tasks[&id].live_job.as_ref().map(|j| j.deadline));
        if !self.queues[core].would_preempt(running_deadline) {
            return;
        }
        let now = self.fs.soc.now();

        // Al. 1 lines 3–7: switch off the checking function by attribute.
        match self.fs.fabric.ids_contain(core).expect("core exists") {
            CoreAttr::Main => {
                let _ = self.fs.op_m_check(core, false);
            }
            CoreAttr::Checker => {
                let _ = self.fs.op_c_check_state(core, false);
            }
            CoreAttr::Compute => {}
        }

        // Al. 1 line 11: save the outgoing context.
        if let Some(cur) = self.running[core].take() {
            let state = self.fs.soc.core(core).state.clone();
            let tcb = self.tasks.get_mut(&cur).expect("running task exists");
            if tcb
                .live_job
                .as_ref()
                .is_some_and(|j| j.state != JobState::Done)
            {
                tcb.context = Some(state);
                if let Some(j) = &mut tcb.live_job {
                    j.state = JobState::Ready;
                }
                let deadline = tcb.live_job.as_ref().expect("live").deadline;
                self.queues[core].insert(cur, deadline);
                self.trace
                    .push(now, TraceEvent::Preempt { core, task: cur });
            }
        }

        // Al. 1 line 12: find next.
        let Some(entry) = self.queues[core].pop() else {
            self.fs.soc.core_mut(core).park();
            self.trace.push(now, TraceEvent::Idle { core });
            return;
        };
        let next = entry.task;
        let tcb = self.tasks.get_mut(&next).expect("queued task exists");
        if let Some(j) = &mut tcb.live_job {
            j.state = JobState::Running;
        }

        // Al. 1 lines 13–19: init on new release, else restore.
        let is_checker_thread = matches!(tcb.def.body, TaskBody::CheckerThread { .. });
        match (&tcb.context, &tcb.def.body) {
            (Some(saved), _) => {
                let state = saved.clone();
                self.fs.soc.core_mut(core).state = state;
            }
            (None, TaskBody::Guest(p)) => {
                let mut state = ArchState::new(core as u64);
                state.pc = p.entry;
                state.prv = PrivMode::User;
                state.set_x(
                    flexstep_isa::XReg::SP,
                    flexstep_isa::asm::DEFAULT_STACK_TOP - (next.0 as u64 % 256) * 0x1_0000,
                );
                self.fs.soc.core_mut(core).state = state;
            }
            (None, TaskBody::CheckerThread { .. }) => {
                // Al. 2 line 4: record the context into the ASS; the
                // replay machinery supplies register state per segment.
                let _ = self.fs.op_c_record(core);
            }
        }
        let tcb = self.tasks.get_mut(&next).expect("exists");
        tcb.context = None;

        // Al. 1 lines 22–28: re-enable checking by attribute. Selective
        // checking: only when the demand latched at release covers this
        // job.
        let check_this_job = tcb.def.is_verified() && tcb.check_demanded;
        let tag = u64::from(next.0);
        match self.fs.fabric.ids_contain(core).expect("core exists") {
            CoreAttr::Main if check_this_job => {
                self.fs.fabric.unit_mut(core).tracker.set_tag(tag);
                let _ = self.fs.op_m_check(core, true);
            }
            CoreAttr::Checker if is_checker_thread => {
                let _ = self.fs.op_c_check_state(core, true);
            }
            _ => {}
        }

        self.running[core] = Some(next);
        self.fs.soc.core_mut(core).clear_reservation();
        self.fs.soc.core_mut(core).unpark();
        self.fs.soc.stall_core(core, self.cfg.context_switch_cycles);
        self.trace
            .push(now, TraceEvent::Dispatch { core, task: next });
    }

    /// Marks the running job on `core` complete.
    fn complete_job(&mut self, core: usize) {
        let now = self.fs.soc.now();
        let Some(id) = self.running[core] else { return };
        let tcb = self.tasks.get_mut(&id).expect("running task exists");
        let Some(job) = &mut tcb.live_job else { return };
        job.state = JobState::Done;
        job.finished_at = Some(now);
        let met = job.met_deadline();
        let k = job.k;
        let response = now.saturating_sub(job.release);
        tcb.completed += 1;
        tcb.response_sum += response;
        tcb.response_max = tcb.response_max.max(response);
        if !met {
            tcb.misses += 1;
        }
        tcb.context = None;
        self.running[core] = None;
        self.trace.push(
            now,
            TraceEvent::Complete {
                core,
                task: id,
                k,
                met_deadline: met,
            },
        );
        self.fs.soc.core_mut(core).park();
        self.fs.soc.stall_core(core, self.cfg.trap_cycles);
    }

    /// Whether a checker-thread job has finished: its verified task's job
    /// is done and the stream is fully consumed.
    fn checker_job_finished(&self, checker_task: TaskId, core: usize) -> bool {
        let Some(&orig) = self.verif_of.get(&checker_task) else {
            return false;
        };
        let orig_tcb = &self.tasks[&orig];
        let orig_done = orig_tcb
            .live_job
            .as_ref()
            .map_or(orig_tcb.completed > 0, |j| j.state == JobState::Done);
        if !orig_done {
            return false;
        }
        let Some((main, consumer)) = self.fs.fabric.channel_of(core) else {
            return false;
        };
        self.fs.fabric.unit(main).fifo.backlog(consumer) == 0
            && matches!(
                self.fs.fabric.unit(core).checker.phase,
                flexstep_core::CheckPhase::WaitScp
            )
    }

    /// Runs the system until `horizon` cycles.
    ///
    /// # Panics
    ///
    /// Panics if a guest faults with an unexpected trap (a bug in the
    /// guest program or kernel configuration).
    pub fn run_until(&mut self, horizon: u64) -> RunSummary {
        assert!(self.booted, "call boot() first");
        loop {
            let now = self.fs.soc.now();
            if now >= horizon {
                break;
            }
            self.release_due_jobs(now);
            for core in 0..self.queues.len() {
                self.schedule_core(core);
            }

            let Some(core) = self.fs.soc.next_ready() else {
                // Everything parked: jump to the next release.
                match self.next_release_time() {
                    Some(t) if t < horizon => {
                        self.fs.soc.advance_to(t);
                        continue;
                    }
                    _ => break,
                }
            };
            // Don't run ahead of pending releases on parked siblings.
            if let Some(t) = self.next_release_time() {
                if self.fs.soc.core(core).ready_at > t && t <= now {
                    // release handled at loop top
                }
            }

            let step = self.fs.step(core);
            self.handle_step(core, step);
        }
        self.finalize(horizon)
    }

    fn handle_step(&mut self, core: usize, step: EngineStep) {
        match step {
            EngineStep::Core(StepKind::Trap {
                cause: TrapCause::EcallFromU,
                ..
            }) => {
                // Guest job completion protocol: ecall ends the job.
                self.complete_job(core);
            }
            EngineStep::Core(StepKind::Interrupted { .. }) => {
                // Timer: kernel tick. Clear and recharge; releases and
                // scheduling happen at the loop top.
                self.fs.soc.core_mut(core).clear_timer();
                self.fs.soc.stall_core(core, self.cfg.trap_cycles);
                self.rearm_timers();
            }
            EngineStep::Core(StepKind::Flex {
                op,
                rd,
                rs1_value,
                rs2_value,
                ..
            }) => {
                let _ = self.fs.exec_flex(core, op, rd, rs1_value, rs2_value);
            }
            EngineStep::Core(StepKind::Trap { cause, tval, pc }) => {
                panic!("unhandled guest trap on core {core}: {cause:?} tval={tval:#x} pc={pc:#x}");
            }
            EngineStep::CheckerInterrupted(_) => {
                self.fs.soc.core_mut(core).clear_timer();
                self.fs.soc.stall_core(core, self.cfg.trap_cycles);
                self.rearm_timers();
            }
            EngineStep::CheckerDetected(event) => {
                self.trace.push(
                    self.fs.soc.now(),
                    TraceEvent::Detection {
                        checker_core: core,
                        tag: event.tag,
                    },
                );
                self.detections.push(event);
                self.maybe_finish_checker(core);
            }
            EngineStep::CheckerSegmentDone(_) => {
                self.maybe_finish_checker(core);
            }
            EngineStep::CheckerWaiting => {
                self.maybe_finish_checker(core);
                // Yield the core if other work is ready (asynchronous
                // checking lets normal tasks preempt idle-waiting).
                if self.cfg.checker_yield
                    && self.running[core].is_some()
                    && !self.queues[core].is_empty()
                {
                    // Force a re-dispatch by treating the checker as
                    // lower priority for this pass: requeue with its own
                    // deadline, then let EDF pick.
                    let id = self.running[core].expect("checked above");
                    let dl = self.tasks[&id].live_job.as_ref().map(|j| j.deadline);
                    if self.queues[core].would_preempt(dl) {
                        self.schedule_core(core);
                    }
                }
            }
            EngineStep::Core(StepKind::Retired(_))
            | EngineStep::Core(StepKind::Wfi)
            | EngineStep::Core(StepKind::Idle)
            | EngineStep::Core(StepKind::Stopped(_))
            | EngineStep::MainBlock { .. }
            | EngineStep::SegmentOpened
            | EngineStep::Backpressured
            | EngineStep::CheckerApplied { .. }
            | EngineStep::CheckerProgress
            | EngineStep::CheckerBlock { .. }
            | EngineStep::Idle => {}
        }
    }

    fn maybe_finish_checker(&mut self, core: usize) {
        if let Some(id) = self.running[core] {
            if self.verif_of.contains_key(&id) && self.checker_job_finished(id, core) {
                self.complete_job(core);
            }
        }
    }

    fn finalize(&mut self, horizon: u64) -> RunSummary {
        // Sweep unfinished jobs whose deadlines passed.
        for (id, tcb) in &mut self.tasks {
            if let Some(j) = &tcb.live_job {
                if j.state != JobState::Done && j.deadline <= horizon {
                    tcb.misses += 1;
                    self.trace
                        .push(horizon, TraceEvent::DeadlineMiss { task: *id, k: j.k });
                }
            }
        }
        let mut detections = std::mem::take(&mut self.detections);
        detections.extend(self.fs.fabric.take_detections());
        RunSummary {
            finished_at: self.fs.soc.now(),
            tasks: self
                .tasks
                .values()
                .map(|t| TaskSummary {
                    id: t.def.id,
                    name: t.def.name.clone(),
                    released: t.next_release_idx,
                    completed: t.completed,
                    misses: t.misses,
                    mean_response: t.mean_response(),
                    max_response: t.response_max,
                })
                .collect(),
            detections,
        }
    }

    fn demand_of(&self, task: TaskId) -> CheckDemand {
        self.demands
            .get(&task)
            .copied()
            .unwrap_or(CheckDemand::Always)
    }

    /// The selective-checking demand currently in force for `task`
    /// (defaults to [`CheckDemand::Always`] for verification tasks).
    pub fn check_demand(&self, task: TaskId) -> CheckDemand {
        self.demand_of(task)
    }

    /// Sets the selective-checking demand for a verification task.
    ///
    /// Takes effect from the task's *next* job release: already-released
    /// jobs keep the demand latched at their release, so the main job and
    /// its checker-thread job(s) always agree.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownTask`] for unknown ids;
    /// [`KernelError::NotVerified`] when the task is not a verification
    /// task (a `T^N` task has nothing to check).
    pub fn set_check_demand(
        &mut self,
        task: TaskId,
        demand: CheckDemand,
    ) -> Result<(), KernelError> {
        let tcb = self
            .tasks
            .get(&task)
            .ok_or(KernelError::UnknownTask { id: task })?;
        if !tcb.def.is_verified() {
            return Err(KernelError::NotVerified { id: task });
        }
        self.demands.insert(task, demand);
        Ok(())
    }

    /// Emergency trigger: demands checking for the next `jobs` releases
    /// of `task` (and no others), returning the covered job-index window
    /// — the §V scenario where "the system dynamically triggers
    /// additional error checking for one or more jobs".
    ///
    /// # Errors
    ///
    /// As [`System::set_check_demand`].
    pub fn trigger_check_window(
        &mut self,
        task: TaskId,
        jobs: u64,
    ) -> Result<(u64, u64), KernelError> {
        let tcb = self
            .tasks
            .get(&task)
            .ok_or(KernelError::UnknownTask { id: task })?;
        if !tcb.def.is_verified() {
            return Err(KernelError::NotVerified { id: task });
        }
        let from = tcb.next_release_idx;
        let until = from + jobs;
        self.demands
            .insert(task, CheckDemand::Window { from, until });
        Ok((from, until))
    }

    /// Immutable task access (tests, examples).
    pub fn task(&self, id: TaskId) -> Option<&Tcb> {
        self.tasks.get(&id)
    }

    /// The checker-thread task generated for `(verified task, checker
    /// core)`, if any.
    pub fn checker_thread_of(&self, task: TaskId, core: usize) -> Option<TaskId> {
        self.verif_threads.get(&(task, core)).copied()
    }
}
