//! Kernel event trace and timeline rendering.
//!
//! Every scheduling decision is recorded so examples can print Gantt-style
//! timelines like Fig. 1 of the paper.

use crate::task::TaskId;
use std::fmt;

/// One traced kernel event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A job was released.
    Release {
        /// The task.
        task: TaskId,
        /// Job index.
        k: u64,
        /// Absolute deadline.
        deadline: u64,
    },
    /// A job started or resumed on a core.
    Dispatch {
        /// The core.
        core: usize,
        /// The task.
        task: TaskId,
    },
    /// A job was preempted.
    Preempt {
        /// The core.
        core: usize,
        /// The task preempted.
        task: TaskId,
    },
    /// A job completed.
    Complete {
        /// The core.
        core: usize,
        /// The task.
        task: TaskId,
        /// Job index.
        k: u64,
        /// Whether its deadline was met.
        met_deadline: bool,
    },
    /// A deadline was missed (overrun detected at the next release or at
    /// the final sweep).
    DeadlineMiss {
        /// The task.
        task: TaskId,
        /// Job index.
        k: u64,
    },
    /// The FlexStep fabric reported an error detection.
    Detection {
        /// Checker core that detected it.
        checker_core: usize,
        /// Stream tag (task id value).
        tag: u64,
    },
    /// A core went idle.
    Idle {
        /// The core.
        core: usize,
    },
}

/// A timestamped trace.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<(u64, TraceEvent)>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event at `cycle`.
    pub fn push(&mut self, cycle: u64, event: TraceEvent) {
        self.events.push((cycle, event));
    }

    /// All events, in insertion (time) order.
    pub fn events(&self) -> &[(u64, TraceEvent)] {
        &self.events
    }

    /// Events of a given core's dispatch/preempt/complete lifecycle.
    pub fn busy_intervals(&self, core: usize) -> Vec<(u64, u64, TaskId)> {
        let mut out = Vec::new();
        let mut open: Option<(u64, TaskId)> = None;
        for &(t, ref e) in &self.events {
            match *e {
                TraceEvent::Dispatch { core: c, task } if c == core => {
                    open = Some((t, task));
                }
                TraceEvent::Preempt { core: c, task }
                | TraceEvent::Complete { core: c, task, .. }
                    if c == core =>
                {
                    if let Some((start, open_task)) = open.take() {
                        if open_task == task {
                            out.push((start, t, task));
                        }
                    }
                }
                TraceEvent::Idle { core: c } if c == core => {
                    open = None;
                }
                _ => {}
            }
        }
        out
    }

    /// Renders an ASCII timeline of a core: one column per `scale` cycles.
    pub fn render_core(&self, core: usize, until: u64, scale: u64) -> String {
        let cols = (until / scale) as usize + 1;
        let mut row = vec![b'.'; cols];
        for (start, end, task) in self.busy_intervals(core) {
            let glyph = b'0' + (task.0 % 10) as u8;
            let from = (start / scale) as usize;
            let to = ((end.saturating_sub(1)) / scale) as usize;
            for cell in row.iter_mut().take(to.min(cols - 1) + 1).skip(from) {
                *cell = glyph;
            }
        }
        format!("core {core} |{}|", String::from_utf8(row).expect("ascii"))
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, e) in &self.events {
            writeln!(f, "{t:>12} {e:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_intervals_pair_dispatch_with_end() {
        let mut tr = Trace::new();
        tr.push(
            0,
            TraceEvent::Dispatch {
                core: 0,
                task: TaskId(1),
            },
        );
        tr.push(
            100,
            TraceEvent::Preempt {
                core: 0,
                task: TaskId(1),
            },
        );
        tr.push(
            100,
            TraceEvent::Dispatch {
                core: 0,
                task: TaskId(2),
            },
        );
        tr.push(
            150,
            TraceEvent::Complete {
                core: 0,
                task: TaskId(2),
                k: 0,
                met_deadline: true,
            },
        );
        tr.push(
            150,
            TraceEvent::Dispatch {
                core: 0,
                task: TaskId(1),
            },
        );
        tr.push(
            220,
            TraceEvent::Complete {
                core: 0,
                task: TaskId(1),
                k: 0,
                met_deadline: true,
            },
        );
        let iv = tr.busy_intervals(0);
        assert_eq!(
            iv,
            vec![
                (0, 100, TaskId(1)),
                (100, 150, TaskId(2)),
                (150, 220, TaskId(1))
            ]
        );
    }

    #[test]
    fn other_core_events_ignored() {
        let mut tr = Trace::new();
        tr.push(
            0,
            TraceEvent::Dispatch {
                core: 1,
                task: TaskId(1),
            },
        );
        tr.push(
            50,
            TraceEvent::Complete {
                core: 1,
                task: TaskId(1),
                k: 0,
                met_deadline: true,
            },
        );
        assert!(tr.busy_intervals(0).is_empty());
        assert_eq!(tr.busy_intervals(1).len(), 1);
    }

    #[test]
    fn render_produces_fixed_width() {
        let mut tr = Trace::new();
        tr.push(
            0,
            TraceEvent::Dispatch {
                core: 0,
                task: TaskId(1),
            },
        );
        tr.push(
            500,
            TraceEvent::Complete {
                core: 0,
                task: TaskId(1),
                k: 0,
                met_deadline: true,
            },
        );
        let s = tr.render_core(0, 1000, 100);
        assert!(s.starts_with("core 0 |"));
        assert!(s.contains('1'));
        assert!(s.contains('.'));
    }
}
