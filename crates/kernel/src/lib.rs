//! # flexstep-kernel
//!
//! The OS layer of the FlexStep reproduction (§IV of the paper): a small
//! partitioned-EDF real-time kernel over the `flexstep-core` platform,
//! implementing the Al. 1 context switch (checking disabled/enabled around
//! every switch through the Tab. I custom ISA) and the Al. 2 customised
//! checker thread, with job release, preemption by timer interrupt,
//! deadline accounting and a schedule trace.
//!
//! ## Example
//!
//! ```
//! use flexstep_core::FabricConfig;
//! use flexstep_kernel::{KernelConfig, System};
//! use flexstep_kernel::task::{TaskBody, TaskClass, TaskDef, TaskId};
//! use flexstep_isa::{asm::Assembler, XReg};
//! use flexstep_sim::SocConfig;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Assembler::new("spin");
//! asm.li(XReg::A0, 200);
//! asm.label("l")?;
//! asm.addi(XReg::A0, XReg::A0, -1);
//! asm.bnez(XReg::A0, "l");
//! asm.ecall();
//! let program = Arc::new(asm.finish()?);
//!
//! let mut sys = System::new(
//!     SocConfig::paper(2),
//!     FabricConfig::paper(),
//!     KernelConfig::default(),
//! );
//! sys.add_task(TaskDef {
//!     id: TaskId(1),
//!     name: "spin".into(),
//!     class: TaskClass::Verified2,
//!     body: TaskBody::Guest(program),
//!     period: 400_000,
//!     phase: 0,
//!     core: 0,
//!     checkers: vec![1],
//!     max_jobs: Some(3),
//! })?;
//! sys.boot()?;
//! let summary = sys.run_until(2_000_000);
//! let t = summary.task(TaskId(1)).unwrap();
//! assert_eq!(t.completed, 3);
//! assert_eq!(summary.total_misses(), 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod edf;
pub mod system;
pub mod task;
pub mod trace;

pub use edf::EdfQueue;
pub use system::{CheckDemand, KernelConfig, KernelError, RunSummary, System, TaskSummary};
pub use task::{Job, JobState, TaskBody, TaskClass, TaskDef, TaskId, Tcb};
pub use trace::{Trace, TraceEvent};
