//! Per-core EDF ready queues.
//!
//! Partitioned EDF is the scheduling policy of §V: each core runs the
//! earliest-deadline ready job, preemptively. Ties break on task id for
//! determinism.

use crate::task::TaskId;
use std::collections::BTreeSet;

/// A ready entry: `(absolute deadline, task id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReadyEntry {
    /// Absolute deadline (primary key).
    pub deadline: u64,
    /// Task id (tie-break).
    pub task: TaskId,
}

/// An EDF ready queue for one core.
#[derive(Debug, Default)]
pub struct EdfQueue {
    ready: BTreeSet<ReadyEntry>,
}

impl EdfQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a ready job.
    pub fn insert(&mut self, task: TaskId, deadline: u64) {
        self.ready.insert(ReadyEntry { deadline, task });
    }

    /// Removes a specific task's entry (job completion or re-dispatch).
    pub fn remove(&mut self, task: TaskId, deadline: u64) -> bool {
        self.ready.remove(&ReadyEntry { deadline, task })
    }

    /// The earliest-deadline entry without removing it.
    pub fn peek(&self) -> Option<ReadyEntry> {
        self.ready.iter().next().copied()
    }

    /// Takes the earliest-deadline entry.
    pub fn pop(&mut self) -> Option<ReadyEntry> {
        let e = self.peek()?;
        self.ready.remove(&e);
        Some(e)
    }

    /// Whether `deadline` would preempt the given running deadline.
    pub fn would_preempt(&self, running_deadline: Option<u64>) -> bool {
        match (self.peek(), running_deadline) {
            (Some(head), Some(run)) => head.deadline < run,
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Number of ready jobs.
    pub fn len(&self) -> usize {
        self.ready.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.ready.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_earliest_deadline_first() {
        let mut q = EdfQueue::new();
        q.insert(TaskId(1), 300);
        q.insert(TaskId(2), 100);
        q.insert(TaskId(3), 200);
        assert_eq!(q.pop().unwrap().task, TaskId(2));
        assert_eq!(q.pop().unwrap().task, TaskId(3));
        assert_eq!(q.pop().unwrap().task, TaskId(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_deadlines_tie_break_on_id() {
        let mut q = EdfQueue::new();
        q.insert(TaskId(9), 100);
        q.insert(TaskId(3), 100);
        assert_eq!(q.pop().unwrap().task, TaskId(3));
    }

    #[test]
    fn preemption_test() {
        let mut q = EdfQueue::new();
        assert!(!q.would_preempt(Some(500)));
        q.insert(TaskId(1), 600);
        assert!(
            !q.would_preempt(Some(500)),
            "later deadline must not preempt"
        );
        q.insert(TaskId(2), 400);
        assert!(q.would_preempt(Some(500)), "earlier deadline preempts");
        assert!(q.would_preempt(None), "idle core always dispatches");
    }

    #[test]
    fn remove_specific_entry() {
        let mut q = EdfQueue::new();
        q.insert(TaskId(1), 100);
        q.insert(TaskId(2), 200);
        assert!(q.remove(TaskId(1), 100));
        assert!(!q.remove(TaskId(1), 100));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
