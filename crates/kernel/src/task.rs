//! Task model: sporadic tasks with WCET, period and implicit deadline
//! (§V), task control blocks and job instances.

use flexstep_isa::asm::Program;
use flexstep_sim::ArchState;
use std::fmt;
use std::sync::Arc;

/// Task identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// Reliability class of a task (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskClass {
    /// `T^N`: non-verification task.
    Normal,
    /// `T^V2`: may require double-check (one redundant execution).
    Verified2,
    /// `T^V3`: may require triple-check (two redundant executions).
    Verified3,
}

impl TaskClass {
    /// Number of redundant executions when verification is triggered.
    pub fn redundancy(self) -> usize {
        match self {
            TaskClass::Normal => 0,
            TaskClass::Verified2 => 1,
            TaskClass::Verified3 => 2,
        }
    }
}

/// What a task executes.
#[derive(Debug, Clone)]
pub enum TaskBody {
    /// A guest program: each job runs it from the entry point to its
    /// final `ecall`.
    Guest(Arc<Program>),
    /// The customised checker thread of Al. 2, verifying the stream of
    /// the given main core.
    CheckerThread {
        /// The main core whose segments this thread verifies.
        main_core: usize,
    },
}

/// Static task definition.
#[derive(Debug, Clone)]
pub struct TaskDef {
    /// Identifier.
    pub id: TaskId,
    /// Human-readable name.
    pub name: String,
    /// Reliability class.
    pub class: TaskClass,
    /// What the task runs.
    pub body: TaskBody,
    /// Release period in cycles (implicit deadline = period).
    pub period: u64,
    /// First release time in cycles.
    pub phase: u64,
    /// Core the task is partitioned onto.
    pub core: usize,
    /// Checker cores verifying this task's jobs (empty for `Normal`).
    pub checkers: Vec<usize>,
    /// Number of jobs to release (`None` = unbounded).
    pub max_jobs: Option<u64>,
}

impl TaskDef {
    /// Absolute release time of job `k` (0-based).
    pub fn release_of(&self, k: u64) -> u64 {
        self.phase + k * self.period
    }

    /// Absolute deadline of job `k` (implicit deadline).
    pub fn deadline_of(&self, k: u64) -> u64 {
        self.release_of(k) + self.period
    }

    /// Whether this task's jobs require error checking.
    pub fn is_verified(&self) -> bool {
        self.class != TaskClass::Normal
    }
}

/// Run state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Released, waiting for the core.
    Ready,
    /// Currently executing.
    Running,
    /// Finished.
    Done,
}

/// One released job instance.
#[derive(Debug, Clone)]
pub struct Job {
    /// The owning task.
    pub task: TaskId,
    /// Job index (0-based).
    pub k: u64,
    /// Absolute release.
    pub release: u64,
    /// Absolute deadline.
    pub deadline: u64,
    /// State.
    pub state: JobState,
    /// Cycle the job completed, when done.
    pub finished_at: Option<u64>,
}

impl Job {
    /// Whether the job met its deadline (only meaningful once done).
    pub fn met_deadline(&self) -> bool {
        self.finished_at.is_some_and(|t| t <= self.deadline)
    }
}

/// Task control block: definition plus saved context and accounting.
#[derive(Debug)]
pub struct Tcb {
    /// The task definition.
    pub def: TaskDef,
    /// Saved architectural context (valid while preempted mid-job).
    pub context: Option<ArchState>,
    /// Next job index to release.
    pub next_release_idx: u64,
    /// The currently released, unfinished job (EDF is work-conserving and
    /// implicit deadlines + a schedulable system mean at most one live job
    /// per task; a second release while live is a deadline overrun).
    pub live_job: Option<Job>,
    /// Whether the live job's checking demand was latched at release
    /// (selective checking: the kernel enables `M.check` only when true).
    pub check_demanded: bool,
    /// Completed job count.
    pub completed: u64,
    /// Deadline misses observed.
    pub misses: u64,
    /// Sum of response times (for averaging).
    pub response_sum: u64,
    /// Maximum response time.
    pub response_max: u64,
}

impl Tcb {
    /// Creates a TCB for a definition.
    pub fn new(def: TaskDef) -> Self {
        Tcb {
            def,
            context: None,
            next_release_idx: 0,
            live_job: None,
            check_demanded: true,
            completed: 0,
            misses: 0,
            response_sum: 0,
            response_max: 0,
        }
    }

    /// The next release time, or `None` when all jobs were released.
    pub fn next_release(&self) -> Option<u64> {
        match self.def.max_jobs {
            Some(max) if self.next_release_idx >= max => None,
            _ => Some(self.def.release_of(self.next_release_idx)),
        }
    }

    /// Mean response time over completed jobs.
    pub fn mean_response(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.response_sum as f64 / self.completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn def(period: u64, phase: u64) -> TaskDef {
        TaskDef {
            id: TaskId(1),
            name: "t".into(),
            class: TaskClass::Normal,
            body: TaskBody::CheckerThread { main_core: 0 },
            period,
            phase,
            core: 0,
            checkers: vec![],
            max_jobs: Some(3),
        }
    }

    #[test]
    fn release_and_deadline_arithmetic() {
        let d = def(100, 10);
        assert_eq!(d.release_of(0), 10);
        assert_eq!(d.release_of(2), 210);
        assert_eq!(d.deadline_of(0), 110);
        assert!(!d.is_verified());
    }

    #[test]
    fn redundancy_by_class() {
        assert_eq!(TaskClass::Normal.redundancy(), 0);
        assert_eq!(TaskClass::Verified2.redundancy(), 1);
        assert_eq!(TaskClass::Verified3.redundancy(), 2);
    }

    #[test]
    fn tcb_release_exhaustion() {
        let mut tcb = Tcb::new(def(100, 0));
        assert_eq!(tcb.next_release(), Some(0));
        tcb.next_release_idx = 2;
        assert_eq!(tcb.next_release(), Some(200));
        tcb.next_release_idx = 3;
        assert_eq!(tcb.next_release(), None);
    }

    #[test]
    fn job_deadline_check() {
        let mut j = Job {
            task: TaskId(0),
            k: 0,
            release: 0,
            deadline: 100,
            state: JobState::Done,
            finished_at: Some(90),
        };
        assert!(j.met_deadline());
        j.finished_at = Some(101);
        assert!(!j.met_deadline());
        j.finished_at = None;
        assert!(!j.met_deadline());
    }
}
