//! Selective-checking integration tests (§V: the system "dynamically
//! triggers additional error checking for one or more jobs of specific
//! verification tasks based on the nature of the emergency").
//!
//! A `T^V2` task's class says it *may* require checking; the kernel's
//! [`CheckDemand`] decides which jobs actually are. These tests pin down
//! the demand semantics end to end: segment counts, checker-thread job
//! accounting, and mid-run emergency triggering.

use flexstep_core::FabricConfig;
use flexstep_isa::asm::{Assembler, Program};
use flexstep_isa::XReg;
use flexstep_kernel::task::{TaskBody, TaskClass, TaskDef, TaskId};
use flexstep_kernel::{CheckDemand, KernelConfig, System};
use flexstep_sim::SocConfig;
use std::sync::Arc;

fn spin_program(name: &str, iters: i64, slot: u64) -> Arc<Program> {
    let text = 0x1000_0000 + slot * 0x10_0000;
    let data = 0x2000_0000 + slot * 0x10_0000;
    let mut asm = Assembler::with_bases(name, text, data);
    asm.li(XReg::A0, iters);
    asm.la(XReg::A2, "buf");
    asm.data_label("buf").unwrap();
    asm.data_zeros(64);
    asm.label("l").unwrap();
    asm.sd(XReg::A2, XReg::A0, 0);
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "l");
    asm.ecall();
    Arc::new(asm.finish().unwrap())
}

fn v2_system(max_jobs: u64) -> System {
    let mut sys = System::new(
        SocConfig::paper(2),
        FabricConfig::paper(),
        KernelConfig::default(),
    );
    sys.add_task(TaskDef {
        id: TaskId(1),
        name: "v".into(),
        class: TaskClass::Verified2,
        body: TaskBody::Guest(spin_program("v", 30_000, 0)),
        period: 2_000_000,
        phase: 0,
        core: 0,
        checkers: vec![1],
        max_jobs: Some(max_jobs),
    })
    .unwrap();
    sys
}

#[test]
fn demand_never_checks_nothing() {
    let mut sys = v2_system(3);
    sys.set_check_demand(TaskId(1), CheckDemand::Never).unwrap();
    sys.boot().unwrap();
    let summary = sys.run_until(7_000_000);
    assert_eq!(summary.task(TaskId(1)).unwrap().completed, 3);
    assert_eq!(summary.total_misses(), 0);
    assert_eq!(
        sys.checker_state(1).segments_checked,
        0,
        "no job was demanded, nothing may be verified"
    );
    let ct = sys.checker_thread_of(TaskId(1), 1).unwrap();
    let cts = summary.task(ct).unwrap();
    assert_eq!(cts.completed, 0, "no checker-thread job may run");
    assert_eq!(cts.misses, 0, "skipped checker jobs are not misses");
}

#[test]
fn window_checks_exactly_the_flagged_jobs() {
    let mut sys = v2_system(4);
    // Jobs 1 and 2 flagged; jobs 0 and 3 not.
    sys.set_check_demand(TaskId(1), CheckDemand::Window { from: 1, until: 3 })
        .unwrap();
    sys.boot().unwrap();

    // Track per-job verification by sampling after each period.
    let mut seg_at = Vec::new();
    for p in 1..=4u64 {
        sys.run_until(p * 2_000_000);
        seg_at.push(sys.checker_state(1).segments_checked);
    }
    let summary = sys.run_until(9_500_000);

    assert_eq!(summary.task(TaskId(1)).unwrap().completed, 4);
    assert_eq!(summary.total_misses(), 0);
    assert_eq!(seg_at[0], 0, "job 0 not demanded");
    assert!(seg_at[1] > seg_at[0], "job 1 verified");
    assert!(seg_at[2] > seg_at[1], "job 2 verified");
    assert_eq!(seg_at[3], seg_at[2], "job 3 not demanded");
    let ct = sys.checker_thread_of(TaskId(1), 1).unwrap();
    assert_eq!(
        summary.task(ct).unwrap().completed,
        2,
        "two checker-thread jobs ran"
    );
    assert_eq!(sys.checker_state(1).segments_failed, 0);
}

#[test]
fn emergency_trigger_covers_next_jobs_only() {
    let mut sys = v2_system(3);
    sys.set_check_demand(TaskId(1), CheckDemand::Never).unwrap();
    sys.boot().unwrap();

    // Let job 0 pass unchecked, then the emergency arrives.
    sys.run_until(2_000_000);
    assert_eq!(sys.checker_state(1).segments_checked, 0);
    let (from, until) = sys.trigger_check_window(TaskId(1), 1).unwrap();
    assert_eq!(
        (from, until),
        (1, 2),
        "emergency flags exactly the next release"
    );

    let summary = sys.run_until(7_000_000);
    assert_eq!(summary.task(TaskId(1)).unwrap().completed, 3);
    assert_eq!(summary.total_misses(), 0);
    assert!(
        sys.checker_state(1).segments_checked > 0,
        "the flagged job was verified"
    );
    let ct = sys.checker_thread_of(TaskId(1), 1).unwrap();
    assert_eq!(
        summary.task(ct).unwrap().completed,
        1,
        "one emergency job checked"
    );
}

#[test]
fn demand_validation_rejects_bad_targets() {
    let mut sys = v2_system(1);
    sys.add_task(TaskDef {
        id: TaskId(2),
        name: "n".into(),
        class: TaskClass::Normal,
        body: TaskBody::Guest(spin_program("n", 1_000, 1)),
        period: 2_000_000,
        phase: 0,
        core: 0,
        checkers: vec![],
        max_jobs: Some(1),
    })
    .unwrap();
    assert!(
        sys.set_check_demand(TaskId(2), CheckDemand::Always)
            .is_err(),
        "normal tasks carry no checking demand"
    );
    assert!(
        sys.set_check_demand(TaskId(9), CheckDemand::Never).is_err(),
        "unknown task must be rejected"
    );
    assert!(sys.trigger_check_window(TaskId(9), 1).is_err());
}

#[test]
fn default_demand_is_always() {
    let mut sys = v2_system(2);
    assert_eq!(sys.check_demand(TaskId(1)), CheckDemand::Always);
    sys.boot().unwrap();
    let summary = sys.run_until(4_500_000);
    assert_eq!(summary.task(TaskId(1)).unwrap().completed, 2);
    assert!(
        sys.checker_state(1).segments_checked > 0,
        "default checks every job"
    );
    let ct = sys.checker_thread_of(TaskId(1), 1).unwrap();
    assert_eq!(summary.task(ct).unwrap().completed, 2);
}

#[test]
fn v2_task_may_carry_extra_redundancy() {
    // A V2 task on a shared 1:2 channel is verified by BOTH checkers —
    // more redundancy than its class requires, which the hardware's
    // "one-to-two, or more modes" explicitly allows.
    let mut sys = System::new(
        SocConfig::paper(3),
        FabricConfig::paper(),
        KernelConfig::default(),
    );
    sys.add_task(TaskDef {
        id: TaskId(1),
        name: "v2wide".into(),
        class: TaskClass::Verified2,
        body: TaskBody::Guest(spin_program("v2w", 20_000, 0)),
        period: 2_500_000,
        phase: 0,
        core: 0,
        checkers: vec![1, 2],
        max_jobs: Some(2),
    })
    .unwrap();
    sys.boot().unwrap();
    let summary = sys.run_until(6_000_000);
    assert_eq!(summary.task(TaskId(1)).unwrap().completed, 2);
    assert_eq!(summary.total_misses(), 0);
    let c1 = sys.checker_state(1).segments_checked;
    let c2 = sys.checker_state(2).segments_checked;
    assert!(c1 > 0, "first checker verified");
    assert_eq!(c1, c2, "both checkers verify the same stream: {c1} vs {c2}");
    assert_eq!(
        sys.checker_state(1).segments_failed + sys.checker_state(2).segments_failed,
        0
    );
}

#[test]
fn demand_covers_window_arithmetic() {
    let w = CheckDemand::Window { from: 2, until: 5 };
    assert!(!w.covers(1));
    assert!(w.covers(2));
    assert!(w.covers(4));
    assert!(!w.covers(5));
    assert!(CheckDemand::Always.covers(u64::MAX));
    assert!(!CheckDemand::Never.covers(0));
}

#[test]
fn unchecked_jobs_free_the_checker_core_for_normal_work() {
    // With demand Never, core 1 hosts a normal task that would otherwise
    // contend with checker threads; the whole set stays schedulable and
    // core 1 does pure compute.
    let mut sys = v2_system(3);
    sys.set_check_demand(TaskId(1), CheckDemand::Never).unwrap();
    sys.add_task(TaskDef {
        id: TaskId(2),
        name: "load".into(),
        class: TaskClass::Normal,
        body: TaskBody::Guest(spin_program("load", 400_000, 1)),
        period: 2_000_000,
        phase: 0,
        core: 1,
        checkers: vec![],
        max_jobs: Some(3),
    })
    .unwrap();
    sys.boot().unwrap();
    let summary = sys.run_until(7_500_000);
    assert_eq!(summary.total_misses(), 0);
    assert_eq!(summary.task(TaskId(2)).unwrap().completed, 3);
    assert_eq!(sys.checker_state(1).segments_checked, 0);
}
