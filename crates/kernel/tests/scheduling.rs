//! Kernel integration tests: preemptive partitioned EDF with FlexStep
//! verification — including a Fig. 1(c)-shaped scenario where
//! asynchronous, preemptible checking lets every deadline be met.

use flexstep_core::FabricConfig;
use flexstep_isa::asm::{Assembler, Program};
use flexstep_isa::XReg;
use flexstep_kernel::task::{TaskBody, TaskClass, TaskDef, TaskId};
use flexstep_kernel::{KernelConfig, System, TraceEvent};
use flexstep_sim::SocConfig;
use std::sync::Arc;

/// A busy-loop program of roughly `iters * 3` user instructions, placed
/// at a caller-chosen text base so multiple tasks can coexist in memory.
fn spin_program(name: &str, iters: i64, slot: u64) -> Arc<Program> {
    let text = 0x1000_0000 + slot * 0x10_0000;
    let data = 0x2000_0000 + slot * 0x10_0000;
    let mut asm = Assembler::with_bases(name, text, data);
    asm.li(XReg::A0, iters);
    asm.la(XReg::A2, "buf");
    asm.data_label("buf").unwrap();
    asm.data_zeros(64);
    asm.label("l").unwrap();
    asm.sd(XReg::A2, XReg::A0, 0);
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "l");
    asm.ecall();
    Arc::new(asm.finish().unwrap())
}

#[allow(clippy::too_many_arguments)] // mirrors TaskDef field-for-field
fn guest(
    id: u32,
    name: &str,
    program: Arc<Program>,
    class: TaskClass,
    period: u64,
    phase: u64,
    core: usize,
    checkers: Vec<usize>,
    max_jobs: u64,
) -> TaskDef {
    TaskDef {
        id: TaskId(id),
        name: name.into(),
        class,
        body: TaskBody::Guest(program),
        period,
        phase,
        core,
        checkers,
        max_jobs: Some(max_jobs),
    }
}

#[test]
fn two_normal_tasks_share_a_core_by_edf() {
    let mut sys = System::new(
        SocConfig::paper(1),
        FabricConfig::paper(),
        KernelConfig::default(),
    );
    // Short-period task must preempt the long-period one.
    let short = spin_program("short", 2_000, 0);
    let long = spin_program("long", 40_000, 1);
    sys.add_task(guest(
        1,
        "short",
        short,
        TaskClass::Normal,
        100_000,
        0,
        0,
        vec![],
        5,
    ))
    .unwrap();
    sys.add_task(guest(
        2,
        "long",
        long,
        TaskClass::Normal,
        600_000,
        0,
        0,
        vec![],
        1,
    ))
    .unwrap();
    sys.boot().unwrap();
    let summary = sys.run_until(1_000_000);
    assert_eq!(summary.task(TaskId(1)).unwrap().completed, 5);
    assert_eq!(summary.task(TaskId(2)).unwrap().completed, 1);
    assert_eq!(summary.total_misses(), 0);
    // The long task must have been preempted at least once.
    let preempts = sys
        .trace
        .events()
        .iter()
        .filter(|(_, e)| {
            matches!(
                e,
                TraceEvent::Preempt {
                    task: TaskId(2),
                    ..
                }
            )
        })
        .count();
    assert!(
        preempts >= 1,
        "EDF must preempt the long job, got {preempts} preemptions"
    );
}

#[test]
fn verified_task_verifies_all_segments() {
    let mut sys = System::new(
        SocConfig::paper(2),
        FabricConfig::paper(),
        KernelConfig::default(),
    );
    let p = spin_program("v", 30_000, 0);
    sys.add_task(guest(
        1,
        "v",
        p,
        TaskClass::Verified2,
        2_000_000,
        0,
        0,
        vec![1],
        2,
    ))
    .unwrap();
    sys.boot().unwrap();
    let summary = sys.run_until(4_500_000);
    let t = summary.task(TaskId(1)).unwrap();
    assert_eq!(t.completed, 2);
    assert_eq!(summary.total_misses(), 0);
    assert!(summary.detections.is_empty(), "clean run must not detect");
    // The checker verified segments.
    let checker = sys.checker_state(1);
    assert!(checker.segments_checked > 0);
    assert_eq!(checker.segments_failed, 0);
    // The checker-thread jobs completed too.
    let ct = sys.checker_thread_of(TaskId(1), 1).unwrap();
    assert_eq!(summary.task(ct).unwrap().completed, 2);
}

#[test]
fn triple_check_uses_two_checkers() {
    let mut sys = System::new(
        SocConfig::paper(3),
        FabricConfig::paper(),
        KernelConfig::default(),
    );
    let p = spin_program("v3", 20_000, 0);
    sys.add_task(guest(
        1,
        "v3",
        p,
        TaskClass::Verified3,
        3_000_000,
        0,
        0,
        vec![1, 2],
        1,
    ))
    .unwrap();
    sys.boot().unwrap();
    let summary = sys.run_until(3_000_000);
    assert_eq!(summary.task(TaskId(1)).unwrap().completed, 1);
    assert_eq!(summary.total_misses(), 0);
    let c1 = sys.checker_state(1).segments_checked;
    let c2 = sys.checker_state(2).segments_checked;
    assert!(
        c1 > 0 && c1 == c2,
        "both checkers verify the same stream: {c1} vs {c2}"
    );
}

#[test]
fn fig1c_emergency_scenario_meets_deadlines() {
    // The Fig. 1(c) shape: τ1 and τ3 are non-verification tasks, τ2's
    // job requires checking. With FlexStep, τ1 runs on core 0, τ2's
    // verification runs asynchronously on core 1 and can be preempted by
    // τ3 — everyone meets their deadlines.
    let clock_ms = 1_600_000u64; // 1 ms at 1.6 GHz
    let mut sys = System::new(
        SocConfig::paper(2),
        FabricConfig::paper_async(),
        KernelConfig::default(),
    );
    let t1 = spin_program("t1", 150_000, 0); // ~"WCET 15"
    let t2 = spin_program("t2", 150_000, 1); // ~"WCET 15", verified
    let t3 = spin_program("t3", 50_000, 2); // ~"WCET 5"
    sys.add_task(guest(
        1,
        "t1",
        t1,
        TaskClass::Normal,
        2 * clock_ms,
        0,
        0,
        vec![],
        3,
    ))
    .unwrap();
    sys.add_task(guest(
        2,
        "t2",
        t2,
        TaskClass::Verified2,
        5 * clock_ms,
        0,
        0,
        vec![1],
        1,
    ))
    .unwrap();
    sys.add_task(guest(
        3,
        "t3",
        t3,
        TaskClass::Normal,
        2 * clock_ms,
        0,
        1,
        vec![],
        3,
    ))
    .unwrap();
    sys.boot().unwrap();
    let summary = sys.run_until(7 * clock_ms);
    assert_eq!(
        summary.total_misses(),
        0,
        "FlexStep schedule must meet all deadlines"
    );
    assert_eq!(summary.task(TaskId(1)).unwrap().completed, 3);
    assert_eq!(summary.task(TaskId(2)).unwrap().completed, 1);
    assert_eq!(summary.task(TaskId(3)).unwrap().completed, 3);
    assert_eq!(sys.checker_state(1).segments_failed, 0);
    assert!(sys.checker_state(1).segments_checked > 0, "τ2 was verified");
}

#[test]
fn add_task_validates_configuration() {
    let mut sys = System::new(
        SocConfig::paper(2),
        FabricConfig::paper(),
        KernelConfig::default(),
    );
    let p = spin_program("x", 100, 0);
    // Core out of range.
    assert!(sys
        .add_task(guest(
            1,
            "x",
            p.clone(),
            TaskClass::Normal,
            1000,
            0,
            7,
            vec![],
            1
        ))
        .is_err());
    // Verified without checkers.
    assert!(sys
        .add_task(guest(
            2,
            "x",
            p.clone(),
            TaskClass::Verified2,
            1000,
            0,
            0,
            vec![],
            1
        ))
        .is_err());
    // Triple-check with only one checker.
    assert!(sys
        .add_task(guest(
            3,
            "x",
            p.clone(),
            TaskClass::Verified3,
            1000,
            0,
            0,
            vec![1],
            1
        ))
        .is_err());
    // Valid, then duplicate id.
    sys.add_task(guest(
        4,
        "x",
        p.clone(),
        TaskClass::Normal,
        1000,
        0,
        0,
        vec![],
        1,
    ))
    .unwrap();
    assert!(sys
        .add_task(guest(4, "x", p, TaskClass::Normal, 1000, 0, 0, vec![], 1))
        .is_err());
}

#[test]
fn overloaded_core_misses_deadlines() {
    let mut sys = System::new(
        SocConfig::paper(1),
        FabricConfig::paper(),
        KernelConfig::default(),
    );
    // A job that takes far longer than its period.
    let p = spin_program("hog", 400_000, 0);
    sys.add_task(guest(
        1,
        "hog",
        p,
        TaskClass::Normal,
        200_000,
        0,
        0,
        vec![],
        3,
    ))
    .unwrap();
    sys.boot().unwrap();
    let summary = sys.run_until(3_000_000);
    assert!(
        summary.task(TaskId(1)).unwrap().misses > 0,
        "overload must miss deadlines"
    );
}
