//! Property tests of the memory hierarchy: functional correctness against
//! a flat byte-granular shadow memory under random multi-core access
//! sequences (including size aliasing), and latency-model sanity.

use flexstep_mem::hierarchy::{MemoryConfig, MemorySystem};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
enum Access {
    Read {
        core: usize,
        slot: u64,
        size: u8,
    },
    Write {
        core: usize,
        slot: u64,
        size: u8,
        value: u64,
    },
}

fn access() -> impl Strategy<Value = Access> {
    let size = prop_oneof![Just(1u8), Just(2), Just(4), Just(8)];
    let slot = 0u64..64; // 64 line-aligned slots over several cache sets
    prop_oneof![
        (0usize..3, slot.clone(), size.clone()).prop_map(|(core, slot, size)| Access::Read {
            core,
            slot,
            size
        }),
        (0usize..3, slot, size, any::<u64>()).prop_map(|(core, slot, size, value)| Access::Write {
            core,
            slot,
            size,
            value
        }),
    ]
}

fn addr_of(slot: u64) -> u64 {
    0x4000 + slot * 64
}

/// Byte-granular shadow: exact under size aliasing (an 8-byte write
/// followed by a 2-byte read must see the low bytes).
#[derive(Default)]
struct Shadow(HashMap<u64, u8>);

impl Shadow {
    fn write(&mut self, addr: u64, value: u64, size: u8) {
        for i in 0..u64::from(size) {
            self.0.insert(addr + i, (value >> (8 * i)) as u8);
        }
    }
    fn read(&self, addr: u64, size: u8) -> u64 {
        (0..u64::from(size)).fold(0u64, |acc, i| {
            acc | u64::from(self.0.get(&(addr + i)).copied().unwrap_or(0)) << (8 * i)
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reads always return the bytes of the most recent writes to the
    /// same locations, across cores and access sizes, whatever the cache
    /// states (MSI is a pure timing model; data must stay coherent by
    /// construction).
    #[test]
    fn coherent_with_flat_shadow(ops in proptest::collection::vec(access(), 1..200)) {
        let mut mem = MemorySystem::new(3, MemoryConfig::paper()).expect("geometry");
        let mut shadow = Shadow::default();
        for op in ops {
            match op {
                Access::Write { core, slot, size, value } => {
                    let addr = addr_of(slot);
                    let lat = mem.write(core, addr, value, size);
                    prop_assert!(lat >= 2, "a write cannot beat the L1 hit latency");
                    shadow.write(addr, value, size);
                }
                Access::Read { core, slot, size } => {
                    let addr = addr_of(slot);
                    let (value, lat) = mem.read(core, addr, size);
                    prop_assert!(lat >= 2);
                    prop_assert_eq!(value, shadow.read(addr, size),
                        "stale read at {:#x} size {}", addr, size);
                }
            }
        }
    }

    /// Same-core re-reads hit: the second access to an address is never
    /// slower than the first, and lands at the L1 hit latency.
    #[test]
    fn rereads_do_not_get_slower(slot in 0u64..32, size in prop_oneof![Just(4u8), Just(8u8)]) {
        let mut mem = MemorySystem::new(1, MemoryConfig::paper()).expect("geometry");
        let addr = addr_of(slot);
        let (_, first) = mem.read(0, addr, size);
        let (_, second) = mem.read(0, addr, size);
        prop_assert!(second <= first, "re-read slower: {} then {}", first, second);
        prop_assert_eq!(second, 2, "second read must be an L1 hit");
    }

    /// Cross-core write-after-write ping-pong costs snoop traffic but
    /// never corrupts data.
    #[test]
    fn cross_core_ping_pong_is_coherent(value_a in any::<u64>(), value_b in any::<u64>()) {
        let mut mem = MemorySystem::new(2, MemoryConfig::paper()).expect("geometry");
        let addr = 0x9000;
        mem.write(0, addr, value_a, 8);
        let (seen_by_1, _) = mem.read(1, addr, 8);
        prop_assert_eq!(seen_by_1, value_a);
        mem.write(1, addr, value_b, 8);
        let (seen_by_0, _) = mem.read(0, addr, 8);
        prop_assert_eq!(seen_by_0, value_b);
    }
}
