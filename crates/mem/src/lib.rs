//! # flexstep-mem
//!
//! Memory-hierarchy substrate for the FlexStep reproduction: sparse
//! physical memory, set-associative cache timing models with MSI coherence
//! state, and a [`MemorySystem`] combining per-core L1s with a shared L2 at
//! the latencies of Tab. II of the paper.
//!
//! Functional data lives in [`PhysMem`]; caches model *timing and
//! coherence*, which is what the FlexStep experiments measure (slowdown,
//! backpressure, detection latency).
//!
//! ## Example
//!
//! ```
//! use flexstep_mem::{MemoryConfig, MemorySystem};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mem = MemorySystem::new(4, MemoryConfig::paper())?;
//! mem.phys_mut().load_words(0x1000, &[0x0000_0013]); // nop
//! let (word, cycles) = mem.fetch(0, 0x1000);
//! assert_eq!(word, 0x13);
//! assert!(cycles >= 2); // L1 latency per Tab. II
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod phys;

pub use cache::{Cache, CacheConfig, CacheStats, LineState};
pub use hierarchy::{AccessKind, LatencyConfig, MemoryConfig, MemorySystem};
pub use phys::PhysMem;
