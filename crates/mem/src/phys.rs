//! Sparse physical memory.
//!
//! Backing store for the simulated SoC: a page-granular sparse map over the
//! full 64-bit physical address space. All multi-byte accesses are
//! little-endian, matching RV64.
//!
//! Functional state lives here; the caches in this crate are *timing and
//! coherence-state* models layered on top (a standard split in
//! architectural simulators — see `DESIGN.md` §5).

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

const PAGE_SHIFT: u32 = 12;
/// Page size of the sparse backing store (4 KiB).
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Multiplicative page-index hasher. The page map sits on the
/// one-lookup-per-memory-access hot path of the simulator; page indices
/// are small, trusted integers, so SipHash's DoS resistance buys nothing
/// and its latency is pure overhead.
#[derive(Debug, Clone, Copy, Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BuildPageHasher;

impl BuildHasher for BuildPageHasher {
    type Hasher = PageHasher;

    #[inline]
    fn build_hasher(&self) -> PageHasher {
        PageHasher(0)
    }
}

/// Sparse, page-granular physical memory.
///
/// Reads of never-written locations return zero, mirroring initialised
/// DRAM on the FPGA platform.
///
/// ```
/// use flexstep_mem::phys::PhysMem;
///
/// let mut mem = PhysMem::new();
/// mem.write_u64(0x1000, 0xDEAD_BEEF_CAFE_F00D);
/// assert_eq!(mem.read_u64(0x1000), 0xDEAD_BEEF_CAFE_F00D);
/// assert_eq!(mem.read_u32(0x1000), 0xCAFE_F00D); // little-endian
/// assert_eq!(mem.read_u8(0x9999_9999), 0); // untouched => zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhysMem {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>, BuildPageHasher>,
}

impl PhysMem {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of materialised pages (diagnostics / footprint tests).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|p| &**p)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`. Accesses may cross
    /// page boundaries.
    pub fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        if offset + N <= PAGE_SIZE {
            if let Some(p) = self.page(addr) {
                out.copy_from_slice(&p[offset..offset + N]);
            }
        } else {
            for (i, b) in out.iter_mut().enumerate() {
                *b = self.read_u8(addr.wrapping_add(i as u64));
            }
        }
        out
    }

    /// Writes `N` little-endian bytes starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        if offset + bytes.len() <= PAGE_SIZE {
            self.page_mut(addr)[offset..offset + bytes.len()].copy_from_slice(bytes);
        } else {
            for (i, &b) in bytes.iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u64), b);
            }
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a naturally-sized value (1, 2, 4 or 8 bytes), zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    pub fn read_sized(&self, addr: u64, size: u8) -> u64 {
        match size {
            1 => u64::from(self.read_u8(addr)),
            2 => u64::from(self.read_u16(addr)),
            4 => u64::from(self.read_u32(addr)),
            8 => self.read_u64(addr),
            _ => panic!("unsupported access size {size}"),
        }
    }

    /// Writes the low `size` bytes of `value` (1, 2, 4 or 8 bytes).
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    pub fn write_sized(&mut self, addr: u64, value: u64, size: u8) {
        match size {
            1 => self.write_u8(addr, value as u8),
            2 => self.write_u16(addr, value as u16),
            4 => self.write_u32(addr, value as u32),
            8 => self.write_u64(addr, value),
            _ => panic!("unsupported access size {size}"),
        }
    }

    /// Bulk-loads an image (e.g. a program text or data segment).
    pub fn load(&mut self, base: u64, image: &[u8]) {
        self.write_bytes(base, image);
    }

    /// Bulk-loads 32-bit words (e.g. encoded instructions).
    pub fn load_words(&mut self, base: u64, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.write_u32(base + (i as u64) * 4, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let mem = PhysMem::new();
        assert_eq!(mem.read_u64(0), 0);
        assert_eq!(mem.read_u8(u64::MAX), 0);
        assert_eq!(mem.page_count(), 0);
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = PhysMem::new();
        mem.write_u32(0x100, 0x0403_0201);
        assert_eq!(mem.read_u8(0x100), 1);
        assert_eq!(mem.read_u8(0x103), 4);
        assert_eq!(mem.read_u16(0x102), 0x0403);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = PhysMem::new();
        let addr = (PAGE_SIZE as u64) - 4;
        mem.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(mem.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(mem.page_count(), 2);
    }

    #[test]
    fn sized_accessors() {
        let mut mem = PhysMem::new();
        mem.write_sized(0x10, 0xFFFF_FFFF_FFFF_FFFF, 2);
        assert_eq!(mem.read_sized(0x10, 2), 0xFFFF);
        assert_eq!(mem.read_sized(0x12, 2), 0); // neighbouring bytes untouched
    }

    #[test]
    #[should_panic(expected = "unsupported access size")]
    fn sized_accessor_rejects_bad_size() {
        PhysMem::new().read_sized(0, 3);
    }

    #[test]
    fn load_words_places_instructions() {
        let mut mem = PhysMem::new();
        mem.load_words(0x1000, &[0xAAAA_BBBB, 0xCCCC_DDDD]);
        assert_eq!(mem.read_u32(0x1000), 0xAAAA_BBBB);
        assert_eq!(mem.read_u32(0x1004), 0xCCCC_DDDD);
    }

    #[test]
    fn sparse_pages_allocated_lazily() {
        let mut mem = PhysMem::new();
        mem.write_u8(0x0, 1);
        mem.write_u8(0x10_0000, 2);
        assert_eq!(mem.page_count(), 2);
    }
}
