//! The full memory system: per-core L1 caches, shared L2, MSI coherence and
//! latency accounting.
//!
//! Functional data always lives in [`PhysMem`]; the caches answer *how
//! long* each access takes (Tab. II latencies) and keep MSI state so that
//! cross-core sharing costs snoop traffic, as on the FPGA platform.
//!
//! The simulation engine is single-threaded and interleaves cores
//! cycle-by-cycle, so memory is sequentially consistent by construction;
//! coherence here is purely a timing/state model.

use crate::cache::{Cache, CacheConfig, CacheGeometryError, CacheStats, LineState};
use crate::phys::PhysMem;

/// Kind of memory access, for routing and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (L1 I-cache path).
    Fetch,
    /// Data read (L1 D-cache path).
    Read,
    /// Data write (L1 D-cache path, write-allocate).
    Write,
}

/// Access latencies in core clock cycles.
///
/// Defaults follow Tab. II: 2-cycle L1s, 40-cycle L2, plus a DRAM latency
/// and a per-snoop penalty for cross-core coherence traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// L1 hit latency (cycles).
    pub l1_hit: u64,
    /// Additional latency of an L2 hit (cycles).
    pub l2_hit: u64,
    /// Additional latency of a DRAM access (cycles).
    pub dram: u64,
    /// Penalty applied when a snoop invalidates/downgrades a remote line.
    pub snoop: u64,
}

impl LatencyConfig {
    /// The latencies of the evaluated configuration (Tab. II).
    pub fn paper() -> Self {
        LatencyConfig {
            l1_hit: 2,
            l2_hit: 40,
            dram: 100,
            snoop: 12,
        }
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Memory-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Geometry of each core's L1 instruction cache.
    pub l1i: CacheConfig,
    /// Geometry of each core's L1 data cache.
    pub l1d: CacheConfig,
    /// Geometry of the shared L2.
    pub l2: CacheConfig,
    /// Latency model.
    pub latency: LatencyConfig,
}

impl MemoryConfig {
    /// The evaluated configuration (Tab. II).
    pub fn paper() -> Self {
        MemoryConfig {
            l1i: CacheConfig::paper_l1(),
            l1d: CacheConfig::paper_l1(),
            l2: CacheConfig::paper_l2(),
            latency: LatencyConfig::paper(),
        }
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[derive(Debug)]
struct CoreCaches {
    l1i: Cache,
    l1d: Cache,
}

/// One overwritten word in a core's undo journal: enough to restore the
/// bytes a store (or AMO) clobbered.
#[derive(Debug, Clone, Copy)]
struct UndoEntry {
    addr: u64,
    size: u8,
    old: u64,
}

/// Per-core undo journal for rollback recovery.
///
/// Marks handed out by [`MemorySystem::journal_mark`] are *absolute*
/// sequence numbers (`base + entries.len()`), so they stay valid across
/// front-truncation when verified segment boundaries retire old entries.
#[derive(Debug, Default)]
struct UndoJournal {
    base: u64,
    entries: Vec<UndoEntry>,
}

/// The shared memory system of the simulated SoC.
///
/// ```
/// use flexstep_mem::hierarchy::{MemoryConfig, MemorySystem};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mem = MemorySystem::new(2, MemoryConfig::paper())?;
/// let t0 = mem.write(0, 0x8000, 42, 8);
/// let (value, t1) = mem.read(1, 0x8000, 8);
/// assert_eq!(value, 42);
/// assert!(t0 > 0 && t1 > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    cores: Vec<CoreCaches>,
    l2: Cache,
    mem: PhysMem,
    latency: LatencyConfig,
    snoops: u64,
    journals: Vec<Option<UndoJournal>>,
}

impl MemorySystem {
    /// Builds a memory system for `num_cores` cores.
    ///
    /// # Errors
    ///
    /// Returns [`CacheGeometryError`] if any cache geometry is invalid.
    pub fn new(num_cores: usize, config: MemoryConfig) -> Result<Self, CacheGeometryError> {
        let mut cores = Vec::with_capacity(num_cores);
        for _ in 0..num_cores {
            cores.push(CoreCaches {
                l1i: Cache::new(config.l1i)?,
                l1d: Cache::new(config.l1d)?,
            });
        }
        let journals = (0..num_cores).map(|_| None).collect();
        Ok(MemorySystem {
            cores,
            l2: Cache::new(config.l2)?,
            mem: PhysMem::new(),
            latency: config.latency,
            snoops: 0,
            journals,
        })
    }

    /// Starts recording an undo journal for `core`'s stores.
    ///
    /// Cores without a journal (the default) pay nothing on the write
    /// path. Only main cores under a rollback recovery policy enable
    /// this.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn enable_journal(&mut self, core: usize) {
        if self.journals[core].is_none() {
            self.journals[core] = Some(UndoJournal::default());
        }
    }

    /// Current journal position of `core`, for later
    /// [`rollback_journal`](Self::rollback_journal) /
    /// [`truncate_journal`](Self::truncate_journal). Returns 0 when no
    /// journal is enabled.
    pub fn journal_mark(&self, core: usize) -> u64 {
        match &self.journals[core] {
            Some(j) => j.base + j.entries.len() as u64,
            None => 0,
        }
    }

    /// Undoes every store `core` performed since `mark`, newest first,
    /// restoring the overwritten bytes in the functional backing store.
    ///
    /// Restoration writes go straight to [`PhysMem`]: the caches carry
    /// timing state only, so no invalidation is needed for correctness.
    pub fn rollback_journal(&mut self, core: usize, mark: u64) {
        let Some(j) = &mut self.journals[core] else {
            return;
        };
        let keep = mark.saturating_sub(j.base) as usize;
        while j.entries.len() > keep {
            let e = j.entries.pop().expect("len > keep implies non-empty");
            self.mem.write_sized(e.addr, e.old, e.size);
        }
    }

    /// Retires journal entries older than `mark` (a verified segment
    /// boundary): they can never be rolled back to again. Marks handed
    /// out earlier stay valid.
    pub fn truncate_journal(&mut self, core: usize, mark: u64) {
        let Some(j) = &mut self.journals[core] else {
            return;
        };
        let drop = (mark.saturating_sub(j.base) as usize).min(j.entries.len());
        if drop > 0 {
            j.entries.drain(..drop);
            j.base += drop as u64;
        }
    }

    fn journal_store(&mut self, core: usize, addr: u64, size: u8) {
        if self.journals[core].is_some() {
            let old = self.mem.read_sized(addr, size);
            if let Some(j) = &mut self.journals[core] {
                j.entries.push(UndoEntry { addr, size, old });
            }
        }
    }

    /// Number of cores served.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Direct access to the functional backing store (program loading,
    /// debugging, checkpoint inspection). No timing is accounted.
    pub fn phys(&self) -> &PhysMem {
        &self.mem
    }

    /// Mutable access to the functional backing store.
    pub fn phys_mut(&mut self) -> &mut PhysMem {
        &mut self.mem
    }

    /// Total snoop operations performed (coherence traffic metric).
    pub fn snoop_count(&self) -> u64 {
        self.snoops
    }

    /// The latency model in force.
    pub fn latency(&self) -> &LatencyConfig {
        &self.latency
    }

    /// L1 D-cache statistics of a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn l1d_stats(&self, core: usize) -> &CacheStats {
        self.cores[core].l1d.stats()
    }

    /// L1 I-cache statistics of a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn l1i_stats(&self, core: usize) -> &CacheStats {
        self.cores[core].l1i.stats()
    }

    /// Shared L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Invalidate every cache (e.g. after loading a fresh program image).
    pub fn flush_all(&mut self) {
        for c in &mut self.cores {
            c.l1i.flush_all();
            c.l1d.flush_all();
        }
        self.l2.flush_all();
    }

    /// Walks L1 → L2 → DRAM for timing, returning cycles.
    fn timed_path(&mut self, core: usize, addr: u64, kind: AccessKind) -> u64 {
        let write = kind == AccessKind::Write;
        let mut cycles = self.latency.l1_hit;

        // Coherence first: a data access may need to snoop remote L1Ds.
        if kind != AccessKind::Fetch {
            cycles += self.coherence_actions(core, addr, write);
        }

        let l1 = match kind {
            AccessKind::Fetch => &mut self.cores[core].l1i,
            _ => &mut self.cores[core].l1d,
        };
        let l1_out = l1.access(addr, write);
        if l1_out.hit {
            return cycles;
        }

        // L1 miss: consult the shared L2.
        let l2_out = self.l2.access(addr, write);
        cycles += self.latency.l2_hit;
        if !l2_out.hit {
            cycles += self.latency.dram;
        }
        // Dirty evictions drain to the next level; modelled as one extra
        // L2 (for L1 victims) or DRAM (for L2 victims) trip.
        if l1_out.writeback.is_some() {
            cycles += self.latency.l2_hit;
        }
        if l2_out.writeback.is_some() {
            cycles += self.latency.dram;
        }
        cycles
    }

    /// MSI snooping: writes invalidate remote copies, reads downgrade
    /// remote Modified lines. Returns the added latency.
    fn coherence_actions(&mut self, core: usize, addr: u64, write: bool) -> u64 {
        let mut cycles = 0;
        for (i, other) in self.cores.iter_mut().enumerate() {
            if i == core {
                continue;
            }
            if write {
                if other.l1d.probe(addr) != LineState::Invalid {
                    other.l1d.invalidate(addr);
                    self.snoops += 1;
                    cycles += self.latency.snoop;
                }
            } else if other.l1d.probe(addr) == LineState::Modified {
                other.l1d.downgrade(addr);
                self.snoops += 1;
                cycles += self.latency.snoop;
            }
        }
        cycles
    }

    /// Fetches a 32-bit instruction word. Returns `(word, cycles)`.
    pub fn fetch(&mut self, core: usize, addr: u64) -> (u32, u64) {
        let cycles = self.timed_path(core, addr, AccessKind::Fetch);
        (self.mem.read_u32(addr), cycles)
    }

    /// Reads `size` bytes (1/2/4/8), zero-extended. Returns
    /// `(value, cycles)`.
    pub fn read(&mut self, core: usize, addr: u64, size: u8) -> (u64, u64) {
        let cycles = self.timed_path(core, addr, AccessKind::Read);
        (self.mem.read_sized(addr, size), cycles)
    }

    /// Writes the low `size` bytes of `value`. Returns cycles.
    pub fn write(&mut self, core: usize, addr: u64, value: u64, size: u8) -> u64 {
        let cycles = self.timed_path(core, addr, AccessKind::Write);
        self.journal_store(core, addr, size);
        self.mem.write_sized(addr, value, size);
        cycles
    }

    /// Atomic read-modify-write: reads the old value, stores the value
    /// produced by `f`. Returns `(old_value, cycles)`.
    ///
    /// The engine interleaves cores at instruction granularity, so the
    /// read-modify-write is indivisible by construction.
    pub fn amo(
        &mut self,
        core: usize,
        addr: u64,
        size: u8,
        f: impl FnOnce(u64) -> u64,
    ) -> (u64, u64) {
        let cycles = self.timed_path(core, addr, AccessKind::Write);
        self.journal_store(core, addr, size);
        let old = self.mem.read_sized(addr, size);
        let new = f(old);
        self.mem.write_sized(addr, new, size);
        (old, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: usize) -> MemorySystem {
        MemorySystem::new(cores, MemoryConfig::paper()).unwrap()
    }

    #[test]
    fn cold_miss_costs_dram_warm_hit_costs_l1() {
        let mut m = sys(1);
        let lat = LatencyConfig::paper();
        let t_cold = m.write(0, 0x1000, 7, 8);
        assert_eq!(t_cold, lat.l1_hit + lat.l2_hit + lat.dram);
        let (v, t_warm) = m.read(0, 0x1000, 8);
        assert_eq!(v, 7);
        assert_eq!(t_warm, lat.l1_hit);
    }

    #[test]
    fn l2_hit_between_cores() {
        let mut m = sys(2);
        let lat = LatencyConfig::paper();
        m.read(0, 0x2000, 8); // fills L1(0) and L2
        let (_, t) = m.read(1, 0x2000, 8); // L1(1) miss, L2 hit
        assert_eq!(t, lat.l1_hit + lat.l2_hit);
    }

    #[test]
    fn write_invalidates_remote_copy() {
        let mut m = sys(2);
        m.read(0, 0x3000, 8);
        m.read(1, 0x3000, 8);
        let before = m.snoop_count();
        m.write(0, 0x3000, 1, 8);
        assert_eq!(m.snoop_count(), before + 1);
        // Core 1 must now miss.
        let lat = LatencyConfig::paper();
        let (v, t) = m.read(1, 0x3000, 8);
        assert_eq!(v, 1);
        assert!(
            t > lat.l1_hit,
            "remote read after invalidation must miss L1"
        );
    }

    #[test]
    fn read_downgrades_remote_modified() {
        let mut m = sys(2);
        m.write(0, 0x4000, 9, 8);
        let before = m.snoop_count();
        let (v, _) = m.read(1, 0x4000, 8);
        assert_eq!(v, 9);
        assert_eq!(m.snoop_count(), before + 1);
    }

    #[test]
    fn fetch_uses_icache_not_dcache() {
        let mut m = sys(1);
        m.phys_mut().write_u32(0x5000, 0x1234_5678);
        let (w, _) = m.fetch(0, 0x5000);
        assert_eq!(w, 0x1234_5678);
        assert_eq!(m.l1i_stats(0).accesses(), 1);
        assert_eq!(m.l1d_stats(0).accesses(), 0);
    }

    #[test]
    fn amo_is_read_modify_write() {
        let mut m = sys(1);
        m.write(0, 0x6000, 10, 8);
        let (old, _) = m.amo(0, 0x6000, 8, |v| v + 5);
        assert_eq!(old, 10);
        assert_eq!(m.phys().read_u64(0x6000), 15);
    }

    #[test]
    fn functional_state_ignores_timing_model() {
        let mut m = sys(2);
        // Interleave many writes from both cores; the final value must be
        // exactly the last write regardless of cache states.
        for i in 0..100u64 {
            m.write((i % 2) as usize, 0x7000, i, 8);
        }
        assert_eq!(m.phys().read_u64(0x7000), 99);
    }

    #[test]
    fn flush_all_forces_refill() {
        let mut m = sys(1);
        m.read(0, 0x8000, 8);
        m.flush_all();
        let lat = LatencyConfig::paper();
        let (_, t) = m.read(0, 0x8000, 8);
        assert_eq!(t, lat.l1_hit + lat.l2_hit + lat.dram);
    }

    #[test]
    fn journal_rollback_restores_overwritten_bytes() {
        let mut m = sys(2);
        m.write(0, 0x9000, 0x1111, 8);
        m.write(0, 0x9008, 0x2222, 8);
        m.enable_journal(0);
        let mark = m.journal_mark(0);
        m.write(0, 0x9000, 0xdead, 8);
        m.amo(0, 0x9008, 8, |v| v + 1);
        m.write(0, 0x9010, 0xbeef, 4);
        // Core 1 has no journal; its writes are never rolled back.
        m.write(1, 0x9100, 7, 8);
        m.rollback_journal(0, mark);
        assert_eq!(m.phys().read_u64(0x9000), 0x1111);
        assert_eq!(m.phys().read_u64(0x9008), 0x2222);
        assert_eq!(m.phys().read_u64(0x9010) & 0xffff_ffff, 0);
        assert_eq!(m.phys().read_u64(0x9100), 7);
    }

    #[test]
    fn journal_marks_survive_truncation() {
        let mut m = sys(1);
        m.enable_journal(0);
        m.write(0, 0xa000, 1, 8);
        let mark = m.journal_mark(0);
        m.write(0, 0xa000, 2, 8);
        m.write(0, 0xa000, 3, 8);
        // Retire everything older than `mark`; the mark itself stays
        // valid as an absolute sequence number.
        m.truncate_journal(0, mark);
        m.rollback_journal(0, mark);
        assert_eq!(m.phys().read_u64(0xa000), 1);
        // Rolling back before the truncation point is a no-op: those
        // entries are gone.
        m.rollback_journal(0, 0);
        assert_eq!(m.phys().read_u64(0xa000), 1);
    }

    #[test]
    fn journal_overlapping_writes_undo_in_reverse_order() {
        let mut m = sys(1);
        m.write(0, 0xb000, 0xaaaa_bbbb_cccc_dddd, 8);
        m.enable_journal(0);
        let mark = m.journal_mark(0);
        m.write(0, 0xb000, 0x11, 1);
        m.write(0, 0xb000, 0x2222, 2);
        m.write(0, 0xb002, 0x33, 1);
        m.rollback_journal(0, mark);
        assert_eq!(m.phys().read_u64(0xb000), 0xaaaa_bbbb_cccc_dddd);
    }
}
