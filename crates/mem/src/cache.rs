//! Set-associative cache timing model.
//!
//! Models the tag arrays of the evaluated Rocket memory hierarchy (Tab. II
//! of the paper): blocking L1 instruction/data caches and a shared L2. Data
//! is *not* stored here — functional state lives in
//! [`PhysMem`](crate::phys::PhysMem); the cache tracks tags, coherence
//! state, LRU order and statistics, and answers "hit or miss" so the
//! hierarchy can account latency.

use std::fmt;

/// Coherence/validity state of a cache line (MSI protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Line not present.
    Invalid,
    /// Present, clean, potentially shared with other caches.
    Shared,
    /// Present, dirty, exclusively owned.
    Modified,
}

/// Geometry and identity of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// The 16 KiB 4-way L1 configuration of Tab. II.
    pub fn paper_l1() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
        }
    }

    /// The 512 KiB 8-way L2 configuration of Tab. II.
    pub fn paper_l2() -> Self {
        CacheConfig {
            size_bytes: 512 * 1024,
            ways: 8,
            line_bytes: 64,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Validates the geometry (power-of-two sets and line size, non-zero
    /// dimensions).
    ///
    /// # Errors
    ///
    /// Returns a [`CacheGeometryError`] describing the violated constraint.
    pub fn validate(&self) -> Result<(), CacheGeometryError> {
        if self.size_bytes == 0 || self.ways == 0 || self.line_bytes == 0 {
            return Err(CacheGeometryError::Zero);
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(CacheGeometryError::LineNotPowerOfTwo {
                line_bytes: self.line_bytes,
            });
        }
        if !self.size_bytes.is_multiple_of(self.ways * self.line_bytes) {
            return Err(CacheGeometryError::NotDivisible);
        }
        if !self.sets().is_power_of_two() {
            return Err(CacheGeometryError::SetsNotPowerOfTwo { sets: self.sets() });
        }
        Ok(())
    }
}

/// Invalid cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheGeometryError {
    /// A dimension is zero.
    Zero,
    /// Line size must be a power of two.
    LineNotPowerOfTwo {
        /// Offending line size.
        line_bytes: usize,
    },
    /// Capacity is not a whole number of sets.
    NotDivisible,
    /// The set count must be a power of two for address slicing.
    SetsNotPowerOfTwo {
        /// Computed set count.
        sets: usize,
    },
}

impl fmt::Display for CacheGeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheGeometryError::Zero => write!(f, "cache dimensions must be non-zero"),
            CacheGeometryError::LineNotPowerOfTwo { line_bytes } => {
                write!(f, "line size {line_bytes} is not a power of two")
            }
            CacheGeometryError::NotDivisible => {
                write!(f, "capacity is not divisible into whole sets")
            }
            CacheGeometryError::SetsNotPowerOfTwo { sets } => {
                write!(f, "set count {sets} is not a power of two")
            }
        }
    }
}

impl std::error::Error for CacheGeometryError {}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Dirty lines written back (on eviction or invalidation).
    pub writebacks: u64,
    /// Lines invalidated by coherence actions.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: LineState,
    /// Higher = more recently used.
    lru: u64,
}

const INVALID_LINE: Line = Line {
    tag: 0,
    state: LineState::Invalid,
    lru: 0,
};

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// A dirty victim line's base address, if one was written back.
    pub writeback: Option<u64>,
}

/// A set-associative tag-array cache with LRU replacement.
///
/// ```
/// use flexstep_mem::cache::{Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig::paper_l1()).expect("valid geometry");
/// assert!(!l1.access(0x1000, false).hit); // cold miss
/// assert!(l1.access(0x1000, false).hit);  // now resident
/// assert!(l1.access(0x1008, false).hit);  // same 64-byte line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    stats: CacheStats,
    tick: u64,
    /// Count of non-Invalid lines; lets coherence probes of untouched
    /// caches (e.g. a checker core's never-used L1D) exit in O(1).
    resident: usize,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CacheGeometryError`] for invalid geometry.
    pub fn new(config: CacheConfig) -> Result<Self, CacheGeometryError> {
        config.validate()?;
        let n = config.sets() * config.ways;
        Ok(Cache {
            config,
            lines: vec![INVALID_LINE; n],
            stats: CacheStats::default(),
            tick: 0,
            resident: 0,
        })
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_index(&self, addr: u64) -> usize {
        let line = addr / self.config.line_bytes as u64;
        (line as usize) & (self.config.sets() - 1)
    }

    fn tag(&self, addr: u64) -> u64 {
        (addr / self.config.line_bytes as u64) / self.config.sets() as u64
    }

    fn line_base(&self, set: usize, tag: u64) -> u64 {
        (tag * self.config.sets() as u64 + set as u64) * self.config.line_bytes as u64
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let start = set * self.config.ways;
        start..start + self.config.ways
    }

    /// Performs an access; `write` marks the line Modified on hit or fill.
    ///
    /// Misses allocate (write-allocate policy) and may evict an LRU victim;
    /// a dirty victim's address is reported for write-back accounting.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.tick += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let range = self.set_range(set);

        // Hit path.
        for i in range.clone() {
            let line = &mut self.lines[i];
            if line.state != LineState::Invalid && line.tag == tag {
                line.lru = self.tick;
                if write {
                    line.state = LineState::Modified;
                }
                self.stats.hits += 1;
                return AccessOutcome {
                    hit: true,
                    writeback: None,
                };
            }
        }

        // Miss: pick a victim (an invalid way if any, else LRU).
        self.stats.misses += 1;
        let victim = range
            .clone()
            .find(|&i| self.lines[i].state == LineState::Invalid)
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.lines[i].lru)
                    .expect("non-zero ways")
            });

        let mut writeback = None;
        let old = self.lines[victim];
        if old.state != LineState::Invalid {
            self.stats.evictions += 1;
            if old.state == LineState::Modified {
                self.stats.writebacks += 1;
                writeback = Some(self.line_base(set, old.tag));
            }
        } else {
            self.resident += 1;
        }
        self.lines[victim] = Line {
            tag,
            state: if write {
                LineState::Modified
            } else {
                LineState::Shared
            },
            lru: self.tick,
        };
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Looks up the state of the line containing `addr` without touching
    /// LRU or statistics.
    pub fn probe(&self, addr: u64) -> LineState {
        if self.resident == 0 {
            return LineState::Invalid;
        }
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        for i in self.set_range(set) {
            let line = &self.lines[i];
            if line.state != LineState::Invalid && line.tag == tag {
                return line.state;
            }
        }
        LineState::Invalid
    }

    /// Invalidates the line containing `addr` (snoop action). Returns the
    /// previous state; a Modified line counts a write-back.
    pub fn invalidate(&mut self, addr: u64) -> LineState {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        for i in self.set_range(set) {
            let line = &mut self.lines[i];
            if line.state != LineState::Invalid && line.tag == tag {
                let old = line.state;
                if old == LineState::Modified {
                    self.stats.writebacks += 1;
                }
                self.stats.invalidations += 1;
                line.state = LineState::Invalid;
                self.resident -= 1;
                return old;
            }
        }
        LineState::Invalid
    }

    /// Downgrades the line containing `addr` from Modified to Shared
    /// (snoop read). Returns `true` if a write-back was needed.
    pub fn downgrade(&mut self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        for i in self.set_range(set) {
            let line = &mut self.lines[i];
            if line.state == LineState::Modified && line.tag == tag {
                line.state = LineState::Shared;
                self.stats.writebacks += 1;
                return true;
            }
        }
        false
    }

    /// Number of resident (non-invalid) lines.
    pub fn resident_lines(&self) -> usize {
        self.resident
    }

    /// Invalidates everything (e.g. at task-image reload).
    pub fn flush_all(&mut self) {
        for line in &mut self.lines {
            *line = INVALID_LINE;
        }
        self.resident = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
        .unwrap()
    }

    #[test]
    fn paper_geometries_are_valid() {
        assert_eq!(CacheConfig::paper_l1().sets(), 64);
        assert_eq!(CacheConfig::paper_l2().sets(), 1024);
        assert!(CacheConfig::paper_l1().validate().is_ok());
        assert!(CacheConfig::paper_l2().validate().is_ok());
    }

    #[test]
    fn invalid_geometry_rejected() {
        let bad = CacheConfig {
            size_bytes: 500,
            ways: 2,
            line_bytes: 64,
        };
        assert!(bad.validate().is_err());
        let bad = CacheConfig {
            size_bytes: 0,
            ways: 2,
            line_bytes: 64,
        };
        assert_eq!(bad.validate(), Err(CacheGeometryError::Zero));
        let bad = CacheConfig {
            size_bytes: 384,
            ways: 2,
            line_bytes: 64,
        };
        assert!(matches!(
            bad.validate(),
            Err(CacheGeometryError::SetsNotPowerOfTwo { sets: 3 })
        ));
    }

    #[test]
    fn hit_after_fill_same_line() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x13F, false).hit); // same line
        assert!(!c.access(0x140, false).hit); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three addresses mapping to set 0 (stride = sets*line = 256B).
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // refresh 0x000
        let out = c.access(0x200, false); // evicts 0x100
        assert!(!out.hit);
        assert_eq!(c.probe(0x100), LineState::Invalid);
        assert_eq!(c.probe(0x000), LineState::Shared);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x100, false);
        let out = c.access(0x200, false); // evicts dirty 0x000
        assert_eq!(out.writeback, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_modified() {
        let mut c = tiny();
        c.access(0x40, false);
        assert_eq!(c.probe(0x40), LineState::Shared);
        c.access(0x40, true);
        assert_eq!(c.probe(0x40), LineState::Modified);
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = tiny();
        c.access(0x40, true);
        assert!(c.downgrade(0x40));
        assert_eq!(c.probe(0x40), LineState::Shared);
        assert_eq!(c.invalidate(0x40), LineState::Shared);
        assert_eq!(c.probe(0x40), LineState::Invalid);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = tiny();
        c.access(0x0, false);
        c.access(0x0, false);
        c.access(0x40, false);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
        assert!((c.stats().miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn flush_all_empties_cache() {
        let mut c = tiny();
        c.access(0x0, true);
        c.access(0x40, false);
        assert_eq!(c.resident_lines(), 2);
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn line_base_reconstruction() {
        let c = tiny();
        let addr = 0x1234_5680u64;
        let set = c.set_index(addr);
        let tag = c.tag(addr);
        assert_eq!(c.line_base(set, tag), addr & !63);
    }
}
