//! Simulator-level integration tests: cycle determinism (the foundation
//! of replay-based checking — two executions of the same program must
//! agree bit-for-bit and cycle-for-cycle), timer-interrupt delivery, and
//! multi-core independence.

use flexstep_isa::asm::{Assembler, Program};
use flexstep_isa::XReg;
use flexstep_sim::{PrivMode, Soc, SocConfig, StepKind, TrapCause};

fn mixed_workload(name: &str, iters: i64, slot: u64) -> Program {
    let mut asm = Assembler::with_bases(
        name,
        0x1000_0000 + slot * 0x10_0000,
        0x2000_0000 + slot * 0x10_0000,
    );
    asm.data_label("buf").unwrap();
    asm.data_u64s(&(0..32u64).map(|i| i * 7 + 1).collect::<Vec<_>>());
    asm.la(XReg::A2, "buf");
    asm.li(XReg::A0, iters);
    asm.li(XReg::A4, 0);
    asm.label("l").unwrap();
    asm.ld(XReg::A3, XReg::A2, 0);
    asm.add(XReg::A4, XReg::A4, XReg::A3);
    asm.sd(XReg::A2, XReg::A4, 8);
    asm.push(flexstep_isa::inst::Inst::Op {
        op: flexstep_isa::inst::IntOp::Mul,
        rd: XReg::A5,
        rs1: XReg::A4,
        rs2: XReg::A3,
    });
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "l");
    asm.ecall();
    asm.finish().unwrap()
}

#[test]
fn identical_runs_are_cycle_deterministic() {
    let program = mixed_workload("det", 5_000, 0);
    let run = || {
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        soc.run_to_ecall(&program, 10_000_000);
        let snap = soc.core(0).state.snapshot();
        (soc.now(), soc.core(0).instret, snap)
    };
    let (t1, i1, s1) = run();
    let (t2, i2, s2) = run();
    assert_eq!(t1, t2, "cycle counts must be identical");
    assert_eq!(i1, i2, "retired counts must be identical");
    assert!(
        s1.diff(&s2).is_empty(),
        "final architectural state must be identical"
    );
}

#[test]
fn timer_interrupt_fires_at_or_after_deadline() {
    let program = mixed_workload("tick", 50_000, 0);
    let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
    soc.load_program(&program);
    soc.core_mut(0).state.pc = program.entry;
    soc.core_mut(0).state.prv = PrivMode::User;
    soc.core_mut(0).unpark();
    let deadline = 20_000;
    soc.core_mut(0).set_timer(deadline);

    let mut interrupted_at = None;
    for _ in 0..1_000_000 {
        match soc.step_core(0).kind {
            StepKind::Interrupted { .. } => {
                interrupted_at = Some(soc.now());
                break;
            }
            StepKind::Trap {
                cause: TrapCause::EcallFromU,
                ..
            } => {
                panic!("program finished before the timer fired");
            }
            _ => {}
        }
    }
    let at = interrupted_at.expect("timer must fire");
    assert!(
        at >= deadline,
        "interrupt cannot fire early: {at} < {deadline}"
    );
    assert!(
        at < deadline + 1_000,
        "interrupt latency must be bounded: fired at {at} for deadline {deadline}"
    );

    // After clearing, the program runs to completion uninterrupted.
    soc.core_mut(0).clear_timer();
    let mut finished = false;
    for _ in 0..10_000_000 {
        if let StepKind::Trap {
            cause: TrapCause::EcallFromU,
            ..
        } = soc.step_core(0).kind
        {
            finished = true;
            break;
        }
    }
    assert!(finished, "program must complete after the tick");
}

#[test]
fn cores_execute_independently() {
    // Two cores running different programs must produce exactly the
    // results they produce alone (the caches share an L2, so *timing*
    // may differ slightly, but architectural results may not).
    let pa = mixed_workload("a", 3_000, 0);
    let pb = mixed_workload("b", 4_000, 1);

    let solo = |p: &Program| {
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        soc.run_to_ecall(p, 10_000_000);
        soc.core(0).state.snapshot()
    };
    let sa = solo(&pa);
    let sb = solo(&pb);

    let mut soc = Soc::new(SocConfig::paper(2)).unwrap();
    soc.load_program(&pa);
    soc.load_program(&pb);
    for (core, p) in [(0usize, &pa), (1, &pb)] {
        soc.core_mut(core).state.pc = p.entry;
        soc.core_mut(core).state.prv = PrivMode::User;
        soc.core_mut(core).unpark();
    }
    let mut done = [false; 2];
    for _ in 0..40_000_000u64 {
        let Some(core) = soc.next_ready_core() else {
            break;
        };
        if let StepKind::Trap {
            cause: TrapCause::EcallFromU,
            ..
        } = soc.step_core(core).kind
        {
            done[core] = true;
            soc.core_mut(core).park();
        }
        if done.iter().all(|&d| d) {
            break;
        }
    }
    assert!(
        done.iter().all(|&d| d),
        "both programs must finish: {done:?}"
    );
    // Register results match the solo runs (pc differs by text base).
    let ma = soc.core(0).state.snapshot();
    let mb = soc.core(1).state.snapshot();
    assert_eq!(ma.xregs[13], sa.xregs[13], "core 0's a3 diverged"); // a3 = x13
    assert_eq!(ma.xregs[14], sa.xregs[14], "core 0's a4 diverged");
    assert_eq!(mb.xregs[14], sb.xregs[14], "core 1's a4 diverged");
}

#[test]
fn run_to_ecall_reports_cycles_monotonically_with_work() {
    let short = mixed_workload("short", 500, 0);
    let long = mixed_workload("long", 5_000, 1);
    let mut s1 = Soc::new(SocConfig::paper(1)).unwrap();
    s1.run_to_ecall(&short, 10_000_000);
    let mut s2 = Soc::new(SocConfig::paper(1)).unwrap();
    s2.run_to_ecall(&long, 10_000_000);
    assert!(
        s2.now() > 5 * s1.now(),
        "10× the iterations must cost clearly more cycles: {} vs {}",
        s1.now(),
        s2.now()
    );
}
