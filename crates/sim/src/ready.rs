//! Event-driven ready-core scheduling.
//!
//! The SoC driver loop repeatedly asks "which running core is ready
//! earliest?". A linear scan answers in O(num_cores) per step; at
//! many-core scale that scan dominates the step loop. [`ReadyQueue`] keeps
//! the answer in a binary heap keyed by `(ready_at, id)` — the exact
//! tie-break order of the linear scan, so both schedulers pick identical
//! cores and replay stays bit-for-bit deterministic.
//!
//! Cores are mutated from many places (the engine after a retire, the
//! kernel on context switches, tests poking `ready_at` directly), so the
//! queue uses *lazy invalidation*: every mutation path marks the core
//! dirty; a query re-enqueues dirty cores whose key actually changed and
//! discards heap entries that no longer match the core's live
//! `(ready_at, running)` state. Most mutations (register writes through
//! `core_mut`, reservation clears) leave `ready_at` untouched and cost
//! nothing beyond the dirty flag; a step costs one push and roughly one
//! stale pop — O(log n) amortised instead of O(n).

use crate::core::Core;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which algorithm [`Soc::next_ready`](crate::Soc::next_ready) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Picks the measured-faster engine for the SoC's core count: the
    /// linear scan at or below [`SchedMode::SCAN_CROSSOVER`] cores, the
    /// event queue above it (see [`SchedMode::resolve`]).
    #[default]
    Adaptive,
    /// Binary-heap event queue: O(log n) per step.
    EventQueue,
    /// The naive O(n) `min_by_key` scan — the reference implementation,
    /// kept for A/B benchmarking and determinism cross-checks.
    LinearScan,
}

impl SchedMode {
    /// Core count above which the event queue beats the linear scan.
    ///
    /// Measured on the `perf_report` scheduler microbench
    /// (`scheduler/next_ready_scaling` in `BENCH_pr9.json`): at 8 cores
    /// the `min_by_key` scan still wins clearly (21.9 vs 34.2 ns/step);
    /// by 16 the heap is ahead (38.2 vs 41.4) and the scan's O(n) then
    /// widens linearly (2.6× slower at 64 cores). Interpolating the two
    /// measured lines between those points — the scan degrades ~2.4
    /// ns/step per core, the heap ~0.5 — puts the crossing at ~14.3
    /// cores. The previous threshold of 8 made `Adaptive` pick the
    /// slower heap across the whole 9–14-core band (e.g. ~35 vs ~28
    /// ns/step at 12 cores on the interpolated lines).
    pub const SCAN_CROSSOVER: usize = 14;

    /// The faster scheduler for an SoC of `num_cores` per the measured
    /// crossover: the linear scan at or below
    /// [`SchedMode::SCAN_CROSSOVER`] cores, the event queue above it.
    /// Both pick identical cores; this only selects the faster engine.
    pub fn default_for(num_cores: usize) -> Self {
        if num_cores > Self::SCAN_CROSSOVER {
            SchedMode::EventQueue
        } else {
            SchedMode::LinearScan
        }
    }

    /// Resolves `Adaptive` to the concrete engine used for `num_cores`;
    /// explicit modes resolve to themselves.
    pub fn resolve(self, num_cores: usize) -> Self {
        match self {
            SchedMode::Adaptive => Self::default_for(num_cores),
            other => other,
        }
    }
}

/// Lazily-invalidated min-heap over `(ready_at, core id)`.
///
/// An entry `(t, id)` is live iff `cores[id]` is running with
/// `ready_at == t`; everything else is discarded when it surfaces. The
/// `queued` cache suppresses duplicate pushes while a core's key is
/// unchanged, keeping the heap near `num_cores` entries.
#[derive(Debug, Default)]
pub(crate) struct ReadyQueue {
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// The `ready_at` key this core currently has in the heap, if any.
    queued: Vec<Option<u64>>,
    /// Cores mutated since the last refresh.
    dirty: Vec<bool>,
    /// Insertion-ordered list of dirty cores (no duplicates).
    dirty_list: Vec<usize>,
}

impl ReadyQueue {
    pub(crate) fn new(num_cores: usize) -> Self {
        ReadyQueue {
            heap: BinaryHeap::with_capacity(num_cores + 4),
            queued: vec![None; num_cores],
            dirty: vec![true; num_cores],
            dirty_list: (0..num_cores).collect(),
        }
    }

    /// Records that `id`'s `ready_at` or run state may have changed.
    #[inline]
    pub(crate) fn mark_dirty(&mut self, id: usize) {
        if !self.dirty[id] {
            self.dirty[id] = true;
            self.dirty_list.push(id);
        }
    }

    /// Re-enqueues dirty cores, then returns the earliest-ready running
    /// core (ties to the lowest id) without consuming its entry.
    pub(crate) fn peek_min(&mut self, cores: &[Core]) -> Option<usize> {
        for id in self.dirty_list.drain(..) {
            self.dirty[id] = false;
            let core = &cores[id];
            if core.is_running() && self.queued[id] != Some(core.ready_at) {
                self.heap.push(Reverse((core.ready_at, id)));
                self.queued[id] = Some(core.ready_at);
            }
        }
        while let Some(&Reverse((t, id))) = self.heap.peek() {
            let core = &cores[id];
            if core.is_running() && core.ready_at == t {
                return Some(id);
            }
            self.heap.pop();
            if self.queued[id] == Some(t) {
                self.queued[id] = None;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpred::BpredConfig;

    fn cores(n: usize) -> Vec<Core> {
        (0..n).map(|i| Core::new(i, BpredConfig::paper())).collect()
    }

    #[test]
    fn empty_when_all_parked() {
        let cores = cores(3);
        let mut q = ReadyQueue::new(3);
        assert_eq!(q.peek_min(&cores), None);
    }

    #[test]
    fn orders_by_ready_at_then_id() {
        let mut cores = cores(3);
        let mut q = ReadyQueue::new(3);
        for c in &mut cores {
            c.unpark();
        }
        cores[0].ready_at = 100;
        cores[1].ready_at = 50;
        cores[2].ready_at = 50;
        assert_eq!(q.peek_min(&cores), Some(1), "ties go to the lowest id");
        cores[1].ready_at = 60;
        q.mark_dirty(1);
        assert_eq!(q.peek_min(&cores), Some(2));
    }

    #[test]
    fn parking_removes_a_core() {
        let mut cores = cores(2);
        let mut q = ReadyQueue::new(2);
        cores[0].unpark();
        cores[1].unpark();
        cores[0].ready_at = 10;
        cores[1].ready_at = 1;
        assert_eq!(q.peek_min(&cores), Some(1));
        cores[1].park();
        q.mark_dirty(1);
        assert_eq!(q.peek_min(&cores), Some(0));
        cores[0].park();
        q.mark_dirty(0);
        assert_eq!(q.peek_min(&cores), None);
    }

    #[test]
    fn park_unpark_round_trip_re_enqueues() {
        let mut cores = cores(2);
        let mut q = ReadyQueue::new(2);
        cores[0].unpark();
        cores[0].ready_at = 5;
        assert_eq!(q.peek_min(&cores), Some(0));
        cores[0].park();
        q.mark_dirty(0);
        assert_eq!(q.peek_min(&cores), None);
        cores[0].unpark();
        q.mark_dirty(0);
        assert_eq!(q.peek_min(&cores), Some(0), "re-enqueued after un-park");
    }

    #[test]
    fn stale_entries_are_discarded_not_returned() {
        let mut cores = cores(2);
        let mut q = ReadyQueue::new(2);
        cores[0].unpark();
        cores[0].ready_at = 5;
        assert_eq!(q.peek_min(&cores), Some(0));
        // Mutate repeatedly without querying in between.
        for t in [3, 9, 1, 7] {
            cores[0].ready_at = t;
            q.mark_dirty(0);
        }
        assert_eq!(q.peek_min(&cores), Some(0));
        cores[1].unpark();
        cores[1].ready_at = 2;
        q.mark_dirty(1);
        assert_eq!(q.peek_min(&cores), Some(1), "7 > 2 after the churn");
    }

    #[test]
    fn adaptive_resolves_to_the_measured_faster_mode() {
        // Pinned against the `scheduler/next_ready_scaling` table in
        // BENCH_pr9.json: the linear scan measures faster through 8
        // cores (21.9 vs 34.2 ns/step) and the interpolated lines cross
        // at ~14.3; the event queue measures faster from 16 up (38.2 vs
        // 41.4, widening to 46.0 vs 121.7 at 64). Adaptive must never
        // pick the slower engine at a measured point.
        assert_eq!(SchedMode::Adaptive.resolve(2), SchedMode::LinearScan);
        assert_eq!(SchedMode::Adaptive.resolve(8), SchedMode::LinearScan);
        assert_eq!(SchedMode::Adaptive.resolve(16), SchedMode::EventQueue);
        assert_eq!(SchedMode::Adaptive.resolve(64), SchedMode::EventQueue);
        // The 9–14-core band sits below the interpolated ~14.3-core
        // crossing: the scan must keep winning right up to it.
        assert_eq!(SchedMode::Adaptive.resolve(12), SchedMode::LinearScan);
        assert_eq!(SchedMode::Adaptive.resolve(14), SchedMode::LinearScan);
        assert_eq!(SchedMode::Adaptive.resolve(15), SchedMode::EventQueue);
        // Explicit modes are not second-guessed.
        assert_eq!(SchedMode::EventQueue.resolve(2), SchedMode::EventQueue);
        assert_eq!(SchedMode::LinearScan.resolve(64), SchedMode::LinearScan);
    }

    #[test]
    fn matches_linear_scan_under_random_churn() {
        // Deterministic pseudo-random churn; compare against min_by_key
        // after every mutation batch.
        let n = 7;
        let mut cores = cores(n);
        let mut q = ReadyQueue::new(n);
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2000 {
            let id = (next() % n as u64) as usize;
            match next() % 4 {
                0 => cores[id].park(),
                1 => cores[id].unpark(),
                _ => {
                    cores[id].unpark();
                    cores[id].ready_at = next() % 1000;
                }
            }
            q.mark_dirty(id);
            let want = cores
                .iter()
                .filter(|c| c.is_running())
                .min_by_key(|c| (c.ready_at, c.id))
                .map(|c| c.id);
            assert_eq!(q.peek_min(&cores), want);
        }
    }
}
