//! Per-hart architectural state: registers, CSRs, privilege mode and trap
//! entry/exit.
//!
//! [`ArchState`] is exactly the state the FlexStep Register Checkpoints
//! capture: `pc`, the integer and floating-point physical register files
//! (PRFs) and the user-visible CSRs (Fig. 2). [`ArchSnapshot`] is the
//! checkpoint payload itself, with a structural diff used in mismatch
//! reports.

use flexstep_isa::csr;
use std::fmt;

/// RISC-V privilege mode. The FlexStep platform uses M-mode for the kernel
/// and U-mode for tasks; checking is restricted to user mode (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrivMode {
    /// User mode — the only mode the CPC checks.
    User,
    /// Machine mode — kernel execution; entering it closes a segment.
    Machine,
}

impl PrivMode {
    /// Encoding used in `mstatus.MPP`.
    pub fn to_mpp(self) -> u64 {
        match self {
            PrivMode::User => 0b00,
            PrivMode::Machine => 0b11,
        }
    }

    /// Decodes `mstatus.MPP` (values other than M map to U).
    pub fn from_mpp(bits: u64) -> Self {
        if bits == 0b11 {
            PrivMode::Machine
        } else {
            PrivMode::User
        }
    }
}

impl fmt::Display for PrivMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivMode::User => f.write_str("U"),
            PrivMode::Machine => f.write_str("M"),
        }
    }
}

/// Trap causes (subset of the RISC-V `mcause` encoding used here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapCause {
    /// Misaligned instruction fetch.
    InstAddrMisaligned,
    /// Illegal or undecodable instruction.
    IllegalInstruction,
    /// `ebreak`.
    Breakpoint,
    /// Misaligned load.
    LoadAddrMisaligned,
    /// Misaligned store or AMO.
    StoreAddrMisaligned,
    /// `ecall` from U-mode.
    EcallFromU,
    /// `ecall` from M-mode.
    EcallFromM,
    /// Machine timer interrupt.
    MachineTimer,
}

impl TrapCause {
    /// The `mcause` value (interrupt bit in bit 63).
    pub fn to_mcause(self) -> u64 {
        match self {
            TrapCause::InstAddrMisaligned => 0,
            TrapCause::IllegalInstruction => 2,
            TrapCause::Breakpoint => 3,
            TrapCause::LoadAddrMisaligned => 4,
            TrapCause::StoreAddrMisaligned => 6,
            TrapCause::EcallFromU => 8,
            TrapCause::EcallFromM => 11,
            TrapCause::MachineTimer => (1 << 63) | 7,
        }
    }

    /// Whether this is an asynchronous interrupt (vs. a synchronous
    /// exception).
    pub fn is_interrupt(self) -> bool {
        matches!(self, TrapCause::MachineTimer)
    }
}

/// Machine-mode CSR file (the subset in [`flexstep_isa::csr`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsrFile {
    /// `mstatus`.
    pub mstatus: u64,
    /// `mtvec`.
    pub mtvec: u64,
    /// `mscratch`.
    pub mscratch: u64,
    /// `mepc`.
    pub mepc: u64,
    /// `mcause`.
    pub mcause: u64,
    /// `mtval`.
    pub mtval: u64,
    /// `mie`.
    pub mie: u64,
    /// `mip`.
    pub mip: u64,
    /// `mhartid` (read-only).
    pub mhartid: u64,
}

/// Counter values consulted by CSR reads (`cycle`, `time`, `instret`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CsrCounters {
    /// Current cycle.
    pub cycle: u64,
    /// Wall-clock (same clock domain here).
    pub time: u64,
    /// Instructions retired.
    pub instret: u64,
}

/// Error for accesses to unimplemented or read-only CSRs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrAccessError {
    /// The offending CSR address.
    pub addr: u16,
    /// Whether the failed access was a write.
    pub write: bool,
}

impl fmt::Display for CsrAccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = if self.write { "write to" } else { "read of" };
        write!(f, "illegal {what} csr {:#x}", self.addr)
    }
}

impl std::error::Error for CsrAccessError {}

/// Complete per-hart architectural state.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchState {
    /// Program counter.
    pub pc: u64,
    /// Integer register file; index 0 is forced to zero by the accessors.
    xregs: [u64; 32],
    /// Floating-point register file (raw IEEE-754 bits).
    fregs: [u64; 32],
    /// Floating-point control/status register.
    pub fcsr: u64,
    /// Current privilege mode.
    pub prv: PrivMode,
    /// Machine CSRs.
    pub csrs: CsrFile,
}

impl ArchState {
    /// Creates a reset state for the given hart, starting in M-mode at
    /// pc = 0 (the kernel boot path repositions it).
    pub fn new(hartid: u64) -> Self {
        let csrs = CsrFile {
            mhartid: hartid,
            ..CsrFile::default()
        };
        ArchState {
            pc: 0,
            xregs: [0; 32],
            fregs: [0; 32],
            fcsr: 0,
            prv: PrivMode::Machine,
            csrs,
        }
    }

    /// Reads integer register `r` (x0 reads as zero).
    pub fn x(&self, r: flexstep_isa::XReg) -> u64 {
        self.xregs[r.index() as usize]
    }

    /// Writes integer register `r` (writes to x0 are discarded).
    pub fn set_x(&mut self, r: flexstep_isa::XReg, value: u64) {
        if !r.is_zero() {
            self.xregs[r.index() as usize] = value;
        }
    }

    /// Reads floating-point register `r` as raw bits.
    pub fn f_bits(&self, r: flexstep_isa::FReg) -> u64 {
        self.fregs[r.index() as usize]
    }

    /// Reads floating-point register `r` as an `f64`.
    pub fn f(&self, r: flexstep_isa::FReg) -> f64 {
        f64::from_bits(self.fregs[r.index() as usize])
    }

    /// Writes floating-point register `r` from raw bits.
    pub fn set_f_bits(&mut self, r: flexstep_isa::FReg, bits: u64) {
        self.fregs[r.index() as usize] = bits;
    }

    /// Writes floating-point register `r` from an `f64`.
    pub fn set_f(&mut self, r: flexstep_isa::FReg, value: f64) {
        self.fregs[r.index() as usize] = value.to_bits();
    }

    /// Reads a CSR.
    ///
    /// # Errors
    ///
    /// Returns [`CsrAccessError`] for unimplemented addresses.
    pub fn read_csr(&self, addr: u16, counters: &CsrCounters) -> Result<u64, CsrAccessError> {
        Ok(match addr {
            csr::MSTATUS => self.csrs.mstatus,
            csr::MISA => (2u64 << 62) | 0x0014_1109, // RV64 IMAFD+U (informational)
            csr::MIE => self.csrs.mie,
            csr::MTVEC => self.csrs.mtvec,
            csr::MSCRATCH => self.csrs.mscratch,
            csr::MEPC => self.csrs.mepc,
            csr::MCAUSE => self.csrs.mcause,
            csr::MTVAL => self.csrs.mtval,
            csr::MIP => self.csrs.mip,
            csr::MHARTID => self.csrs.mhartid,
            csr::CYCLE => counters.cycle,
            csr::TIME => counters.time,
            csr::INSTRET => counters.instret,
            csr::FCSR => self.fcsr,
            _ => return Err(CsrAccessError { addr, write: false }),
        })
    }

    /// Writes a CSR.
    ///
    /// # Errors
    ///
    /// Returns [`CsrAccessError`] for unimplemented or read-only addresses.
    pub fn write_csr(&mut self, addr: u16, value: u64) -> Result<(), CsrAccessError> {
        if csr::is_read_only(addr) {
            return Err(CsrAccessError { addr, write: true });
        }
        match addr {
            csr::MSTATUS => self.csrs.mstatus = value,
            csr::MISA => {} // WARL: writes ignored
            csr::MIE => self.csrs.mie = value,
            csr::MTVEC => self.csrs.mtvec = value,
            csr::MSCRATCH => self.csrs.mscratch = value,
            csr::MEPC => self.csrs.mepc = value & !1,
            csr::MCAUSE => self.csrs.mcause = value,
            csr::MTVAL => self.csrs.mtval = value,
            csr::MIP => self.csrs.mip = value,
            csr::FCSR => self.fcsr = value & 0xFF,
            _ => return Err(CsrAccessError { addr, write: true }),
        }
        Ok(())
    }

    /// Architectural trap entry: saves `pc`/cause/tval, stacks the
    /// interrupt-enable and privilege bits, switches to M-mode and jumps to
    /// `mtvec`.
    pub fn enter_trap(&mut self, cause: TrapCause, tval: u64) {
        self.csrs.mepc = self.pc;
        self.csrs.mcause = cause.to_mcause();
        self.csrs.mtval = tval;
        let mie = (self.csrs.mstatus & csr::MSTATUS_MIE) != 0;
        self.csrs.mstatus &= !(csr::MSTATUS_MIE | csr::MSTATUS_MPIE | csr::MSTATUS_MPP_MASK);
        if mie {
            self.csrs.mstatus |= csr::MSTATUS_MPIE;
        }
        self.csrs.mstatus |= self.prv.to_mpp() << csr::MSTATUS_MPP_SHIFT;
        self.prv = PrivMode::Machine;
        self.pc = self.csrs.mtvec & !0b11;
    }

    /// Architectural trap return (`mret`): restores privilege and
    /// interrupt-enable state and jumps to `mepc`.
    pub fn leave_trap(&mut self) {
        let mpie = (self.csrs.mstatus & csr::MSTATUS_MPIE) != 0;
        let mpp = (self.csrs.mstatus & csr::MSTATUS_MPP_MASK) >> csr::MSTATUS_MPP_SHIFT;
        self.prv = PrivMode::from_mpp(mpp);
        self.csrs.mstatus &= !(csr::MSTATUS_MIE | csr::MSTATUS_MPP_MASK);
        if mpie {
            self.csrs.mstatus |= csr::MSTATUS_MIE;
        }
        self.csrs.mstatus |= csr::MSTATUS_MPIE;
        self.pc = self.csrs.mepc;
    }

    /// Whether machine interrupts are globally enabled (or the hart is in
    /// U-mode, where M-mode interrupts always fire).
    pub fn interrupts_enabled(&self) -> bool {
        self.prv == PrivMode::User || (self.csrs.mstatus & csr::MSTATUS_MIE) != 0
    }

    /// Captures the register-checkpoint payload (PRFs + pc + fcsr).
    pub fn snapshot(&self) -> ArchSnapshot {
        ArchSnapshot {
            pc: self.pc,
            xregs: self.xregs,
            fregs: self.fregs,
            fcsr: self.fcsr,
        }
    }

    /// Restores a register-checkpoint payload (CSRs and privilege are not
    /// part of checkpoints: checking is user-mode only, §III-A).
    pub fn restore(&mut self, snap: &ArchSnapshot) {
        self.pc = snap.pc;
        self.xregs = snap.xregs;
        self.xregs[0] = 0;
        self.fregs = snap.fregs;
        self.fcsr = snap.fcsr;
    }
}

/// A register checkpoint: the user-visible architectural state at a segment
/// boundary (SCP/ECP payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchSnapshot {
    /// Program counter (for an SCP this is the segment's start pc).
    pub pc: u64,
    /// Integer register file.
    pub xregs: [u64; 32],
    /// Floating-point register file (raw bits).
    pub fregs: [u64; 32],
    /// Floating-point CSR.
    pub fcsr: u64,
}

impl ArchSnapshot {
    /// Serialised size in bytes: 65 × 8-byte registers plus pc and fcsr.
    /// Used for ASS storage and FIFO occupancy accounting.
    pub const BYTES: usize = (32 + 32 + 2) * 8;

    /// Structural comparison producing the first few differing fields,
    /// for detection reports.
    pub fn diff(&self, other: &ArchSnapshot) -> Vec<SnapshotDiff> {
        let mut out = Vec::new();
        if self.pc != other.pc {
            out.push(SnapshotDiff {
                field: "pc".into(),
                expected: self.pc,
                actual: other.pc,
            });
        }
        for i in 0..32 {
            if self.xregs[i] != other.xregs[i] {
                out.push(SnapshotDiff {
                    field: format!("x{i}"),
                    expected: self.xregs[i],
                    actual: other.xregs[i],
                });
            }
        }
        for i in 0..32 {
            if self.fregs[i] != other.fregs[i] {
                out.push(SnapshotDiff {
                    field: format!("f{i}"),
                    expected: self.fregs[i],
                    actual: other.fregs[i],
                });
            }
        }
        if self.fcsr != other.fcsr {
            out.push(SnapshotDiff {
                field: "fcsr".into(),
                expected: self.fcsr,
                actual: other.fcsr,
            });
        }
        out
    }

    /// Flips one bit of the serialised image — the fault-injection
    /// primitive used by the Fig. 7 experiment. Bit indices address the
    /// `[pc, x0..x31, f0..f31, fcsr]` layout.
    pub fn flip_bit(&mut self, bit: usize) {
        let word = (bit / 64) % 66;
        let b = bit % 64;
        match word {
            0 => self.pc ^= 1 << b,
            1..=32 => self.xregs[word - 1] ^= 1 << b,
            33..=64 => self.fregs[word - 33] ^= 1 << b,
            _ => self.fcsr ^= 1 << b,
        }
    }
}

/// One differing checkpoint field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDiff {
    /// Field name (`pc`, `x5`, `f12`, `fcsr`).
    pub field: String,
    /// Value recorded by the main core.
    pub expected: u64,
    /// Value computed by the checker core.
    pub actual: u64,
}

impl fmt::Display for SnapshotDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: expected {:#x}, actual {:#x}",
            self.field, self.expected, self.actual
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexstep_isa::XReg;

    #[test]
    fn x0_is_hardwired_zero() {
        let mut s = ArchState::new(0);
        s.set_x(XReg::ZERO, 123);
        assert_eq!(s.x(XReg::ZERO), 0);
        s.set_x(XReg::A0, 7);
        assert_eq!(s.x(XReg::A0), 7);
    }

    #[test]
    fn trap_roundtrip_restores_mode_and_pc() {
        let mut s = ArchState::new(0);
        s.prv = PrivMode::User;
        s.pc = 0x1000;
        s.csrs.mtvec = 0x9000;
        s.csrs.mstatus = flexstep_isa::csr::MSTATUS_MIE;
        s.enter_trap(TrapCause::EcallFromU, 0);
        assert_eq!(s.prv, PrivMode::Machine);
        assert_eq!(s.pc, 0x9000);
        assert_eq!(s.csrs.mepc, 0x1000);
        assert_eq!(s.csrs.mcause, 8);
        // Interrupts masked inside the handler.
        assert!(!s.interrupts_enabled());
        s.leave_trap();
        assert_eq!(s.prv, PrivMode::User);
        assert_eq!(s.pc, 0x1000);
        assert!(s.interrupts_enabled());
    }

    #[test]
    fn interrupts_always_enabled_in_user_mode() {
        let mut s = ArchState::new(0);
        s.prv = PrivMode::User;
        s.csrs.mstatus = 0;
        assert!(s.interrupts_enabled());
    }

    #[test]
    fn timer_cause_has_interrupt_bit() {
        assert!(TrapCause::MachineTimer.is_interrupt());
        assert_eq!(TrapCause::MachineTimer.to_mcause() >> 63, 1);
        assert!(!TrapCause::EcallFromU.is_interrupt());
    }

    #[test]
    fn csr_read_write_and_errors() {
        let mut s = ArchState::new(3);
        let counters = CsrCounters {
            cycle: 55,
            time: 66,
            instret: 77,
        };
        assert_eq!(s.read_csr(flexstep_isa::csr::MHARTID, &counters), Ok(3));
        assert_eq!(s.read_csr(flexstep_isa::csr::CYCLE, &counters), Ok(55));
        assert!(s.write_csr(flexstep_isa::csr::MHARTID, 0).is_err());
        assert!(s.read_csr(0x7C0, &counters).is_err());
        s.write_csr(flexstep_isa::csr::MEPC, 0x1001).unwrap();
        assert_eq!(s.csrs.mepc, 0x1000, "mepc low bit is WARL-zero");
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut s = ArchState::new(0);
        s.pc = 0xAAA0;
        s.set_x(XReg::A3, 42);
        s.set_f(flexstep_isa::FReg::of(2), 2.75);
        let snap = s.snapshot();
        let mut t = ArchState::new(1);
        t.restore(&snap);
        assert_eq!(t.pc, 0xAAA0);
        assert_eq!(t.x(XReg::A3), 42);
        assert_eq!(t.f(flexstep_isa::FReg::of(2)), 2.75);
        assert_eq!(t.snapshot(), snap);
    }

    #[test]
    fn snapshot_diff_pinpoints_fields() {
        let mut s = ArchState::new(0);
        s.set_x(XReg::A0, 1);
        let a = s.snapshot();
        let mut b = a;
        b.xregs[10] = 2;
        b.pc = 4;
        let d = a.diff(&b);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].field, "pc");
        assert_eq!(d[1].field, "x10");
        assert!(d[1].to_string().contains("expected 0x1"));
    }

    #[test]
    fn flip_bit_touches_every_region() {
        let base = ArchState::new(0).snapshot();
        let mut a = base;
        a.flip_bit(0); // pc bit 0
        assert_eq!(a.pc, 1);
        let mut b = base;
        b.flip_bit(64); // x0 region
        assert_eq!(b.xregs[0], 1);
        let mut c = base;
        c.flip_bit(64 * 33 + 3); // f0 region
        assert_eq!(c.fregs[0], 8);
        let mut d = base;
        d.flip_bit(64 * 65); // fcsr
        assert_eq!(d.fcsr, 1);
    }

    #[test]
    fn snapshot_size_matches_layout() {
        assert_eq!(ArchSnapshot::BYTES, 528);
    }
}
