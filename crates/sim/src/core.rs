//! A single simulated core (hart + timing model + bookkeeping).

use crate::bpred::BpredConfig;
use crate::hart::ArchState;
use crate::model::CoreModel;
use flexstep_soc::CoreModelKind;

/// Run state of a core within the SoC engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Executing instructions.
    Running,
    /// Parked: waiting for an interrupt or kernel action (`wfi`, idle).
    Parked,
    /// Permanently stopped (end of simulation).
    Halted,
}

/// One simulated core.
///
/// The architectural state is public — the host kernel manipulates it
/// directly during context switches, exactly as the FlexStep OS add-ons
/// manipulate the real register file through the trap path. The timing
/// microarchitecture lives behind [`CoreModel`]: the slot's descriptor
/// picks in-order or out-of-order timing while the architectural ISA
/// semantics stay shared.
#[derive(Debug)]
pub struct Core {
    /// Core index (also `mhartid`).
    pub id: usize,
    /// Architectural state.
    pub state: ArchState,
    /// Timing model (predictor, hazards, issue window — timing only).
    pub model: CoreModel,
    /// LR/SC reservation address.
    pub(crate) resv: Option<u64>,
    /// Cycle at which the core can execute its next instruction.
    pub ready_at: u64,
    /// Scheduling state.
    pub run_state: RunState,
    /// Total retired instructions.
    pub instret: u64,
    /// Retired instructions in user mode (the CPC instruction counter's
    /// clock source).
    pub user_instret: u64,
    /// Cycles this core spent actually retiring instructions (the IPC
    /// denominator; excludes parked/idle time).
    pub busy_cycles: u64,
    /// Timer compare value (cycle); `None` disables the timer.
    pub timer_cmp: Option<u64>,
    /// Pending machine-timer interrupt latch.
    pub(crate) timer_pending: bool,
    /// I-cache line of the previous fetch (L0 fetch fast path): a repeat
    /// fetch of the same line is a guaranteed L1 hit and cannot change
    /// any replacement decision, so the tag-array walk is skipped.
    pub(crate) last_fetch_line: u64,
    /// The words of `last_fetch_line` (valid when the line is 64 bytes):
    /// repeat fetches read straight from this buffer, skipping the sparse
    /// page map. Invalidated when this core stores to the line.
    pub(crate) line_buf: [u32; 16],
}

impl Core {
    /// Creates a reset core with the in-order timing model.
    pub fn new(id: usize, bpred: BpredConfig) -> Self {
        Core::with_model(id, bpred, CoreModelKind::InOrder)
    }

    /// Creates a reset core running the timing model `kind` names.
    pub fn with_model(id: usize, bpred: BpredConfig, kind: CoreModelKind) -> Self {
        Core {
            id,
            state: ArchState::new(id as u64),
            model: CoreModel::from_kind(kind, bpred),
            resv: None,
            ready_at: 0,
            run_state: RunState::Parked,
            instret: 0,
            user_instret: 0,
            busy_cycles: 0,
            timer_cmp: None,
            timer_pending: false,
            last_fetch_line: u64::MAX,
            line_buf: [0; 16],
        }
    }

    /// The descriptor of this core's timing model.
    pub fn model_kind(&self) -> CoreModelKind {
        self.model.kind()
    }

    /// Retired-instructions-per-busy-cycle (`NaN`-free: 0 before the
    /// first retirement).
    pub fn ipc(&self) -> f64 {
        if self.busy_cycles == 0 {
            0.0
        } else {
            self.instret as f64 / self.busy_cycles as f64
        }
    }

    /// Clears the LR/SC reservation (kernel does this on traps and
    /// context switches).
    pub fn clear_reservation(&mut self) {
        self.resv = None;
    }

    /// Resets the microarchitectural timing state — branch-predictor
    /// tables, the load-use hazard latch and the L0 fetch buffer — as
    /// part of a replay context switch. The FlexStep engine calls this
    /// when a checker applies a segment start checkpoint, making each
    /// segment's replay timing a pure function of (checkpoint, log
    /// stream, code bytes) regardless of what the checker ran before;
    /// that purity is what lets identical segments be memoized.
    pub fn reset_replay_uarch(&mut self) {
        self.model.reset_replay_uarch();
        self.last_fetch_line = u64::MAX;
    }

    /// Arms the core timer to fire at `cycle`.
    pub fn set_timer(&mut self, cycle: u64) {
        self.timer_cmp = Some(cycle);
        self.timer_pending = false;
    }

    /// Disarms the timer and clears any pending interrupt.
    pub fn clear_timer(&mut self) {
        self.timer_cmp = None;
        self.timer_pending = false;
    }

    /// Whether a timer interrupt is latched and deliverable.
    pub fn timer_interrupt_deliverable(&self) -> bool {
        self.timer_pending && self.state.interrupts_enabled()
    }

    /// Starts executing (kernel dispatch).
    pub fn unpark(&mut self) {
        if self.run_state != RunState::Halted {
            self.run_state = RunState::Running;
        }
    }

    /// Parks the core (idle / `wfi`).
    pub fn park(&mut self) {
        if self.run_state != RunState::Halted {
            self.run_state = RunState::Parked;
        }
    }

    /// Permanently halts the core.
    pub fn halt(&mut self) {
        self.run_state = RunState::Halted;
    }

    /// Whether the engine may step this core.
    pub fn is_running(&self) -> bool {
        self.run_state == RunState::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_core_is_parked() {
        let c = Core::new(3, BpredConfig::paper());
        assert_eq!(c.run_state, RunState::Parked);
        assert_eq!(c.state.csrs.mhartid, 3);
        assert!(!c.is_running());
    }

    #[test]
    fn halt_is_sticky() {
        let mut c = Core::new(0, BpredConfig::paper());
        c.halt();
        c.unpark();
        assert_eq!(c.run_state, RunState::Halted);
        c.park();
        assert_eq!(c.run_state, RunState::Halted);
    }

    #[test]
    fn timer_latch_requires_enable() {
        let mut c = Core::new(0, BpredConfig::paper());
        c.set_timer(100);
        c.timer_pending = true;
        // Machine mode with MIE clear: not deliverable.
        assert!(!c.timer_interrupt_deliverable());
        c.state.prv = crate::hart::PrivMode::User;
        assert!(c.timer_interrupt_deliverable());
    }
}
