//! Pluggable core timing models (the `CoreModel` trait layer).
//!
//! The architectural execute stage is a pure function
//! ([`crate::exec::execute`], re-exposed here behind the
//! [`InstructionExecutor`] trait); what differs between core
//! microarchitectures is *when* a retired instruction's effects land.
//! [`CoreTimingModel`] captures exactly that seam: the SoC engine
//! fetches, decodes and executes, then hands the retirement to the
//! model, which owns every piece of speculative/hazard state (branch
//! predictor, interlocks, scoreboard, reorder window) and answers with
//! the cycles to charge.
//!
//! Two models ship behind the [`CoreModel`] enum (enum dispatch keeps
//! the step loop monomorphic — no vtable in the hot path):
//!
//! - [`InOrderModel`] — the Rocket-like single-issue pipeline the
//!   simulator always had. Its arithmetic is kept literally identical
//!   to the pre-trait code: the equivalence suite pins reports and
//!   traces byte-for-byte against pre-refactor goldens.
//! - [`OooModel`] — a MEEK-class wide superscalar: `width`-wide
//!   fetch/issue/retire, a register scoreboard for dataflow issue, and
//!   a `rob`-entry reorder window bounding in-flight work. Retire
//!   deltas can be zero, so IPC above 1 flows through the engine's
//!   existing `ready_at = now + cycles` contract unchanged.

use crate::bpred::{BpredConfig, BranchPredictor};
use crate::exec::{execute, BranchOutcome, Exec, Stop};
use crate::hart::{ArchState, CsrCounters};
use crate::port::DataPort;
use crate::timing::ExecCosts;
use flexstep_isa::inst::Inst;
use flexstep_isa::XReg;
use flexstep_soc::CoreModelKind;
use std::collections::VecDeque;

/// The architectural execute stage as a trait (the nexus-zkvm
/// `InstructionExecutor` idiom): one implementation, shared by every
/// timing model and by checker replay — main and checker run the *same*
/// executor over different data ports, which is what makes replay
/// verification meaningful.
pub trait InstructionExecutor {
    /// Executes one instruction against `state` through `port`.
    ///
    /// # Errors
    ///
    /// Returns [`Stop`] when the instruction traps, parks, is a
    /// platform (FlexStep) instruction, or the port aborts it; `state`
    /// is unmodified in every stop case.
    fn execute(
        &self,
        state: &mut ArchState,
        inst: &Inst,
        counters: &CsrCounters,
        costs: &ExecCosts,
        port: &mut dyn DataPort,
        resv: &mut Option<u64>,
    ) -> Result<Exec, Stop>;
}

/// The scalar RV64 executor every core model shares.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarExecutor;

impl InstructionExecutor for ScalarExecutor {
    #[inline]
    fn execute(
        &self,
        state: &mut ArchState,
        inst: &Inst,
        counters: &CsrCounters,
        costs: &ExecCosts,
        port: &mut dyn DataPort,
        resv: &mut Option<u64>,
    ) -> Result<Exec, Stop> {
        execute(state, inst, counters, costs, port, resv)
    }
}

/// Everything a timing model sees about one retiring instruction.
#[derive(Debug, Clone, Copy)]
pub struct RetireInfo<'a> {
    /// The instruction's pc.
    pub pc: u64,
    /// The decoded instruction (source/destination register queries).
    pub inst: &'a Inst,
    /// Front-end fetch penalty beyond the pipelined L1 hit.
    pub fetch_cycles: u64,
    /// Data-port and long-latency functional-unit cycles
    /// ([`Exec::extra_cycles`]).
    pub extra_cycles: u64,
    /// Whether the instruction's memory access reads (load/LR) — the
    /// load-use interlock source.
    pub mem_is_load: bool,
    /// Control-flow resolution, if any.
    pub branch: Option<BranchOutcome>,
    /// The control-flow outcome arrived pre-resolved through the DBC
    /// stream (checker replaying an out-of-order main): charge no
    /// prediction penalty and leave the predictor untouched.
    pub branch_hinted: bool,
}

/// The timing half of a core model: owns all speculative and hazard
/// state, charges cycles per retirement.
pub trait CoreTimingModel {
    /// The descriptor this model was built from.
    fn kind(&self) -> CoreModelKind;

    /// Cycles to charge for one retired instruction. `now` is the
    /// core's local timeline at dispatch; in-order models ignore it,
    /// window models use it to re-anchor their absolute bookkeeping
    /// after externally imposed stalls.
    fn retire(&mut self, r: &RetireInfo<'_>, costs: &ExecCosts, now: u64) -> u64;

    /// Resets all speculative timing state (predictor tables, hazard
    /// latches, scoreboard, reorder window) as part of a replay context
    /// switch — replay timing must be a pure function of (checkpoint,
    /// log stream, code bytes).
    fn reset_replay_uarch(&mut self);
}

/// The Rocket-like single-issue in-order pipeline (Tab. II).
#[derive(Debug)]
pub struct InOrderModel {
    /// Branch predictor (timing only).
    pub bpred: BranchPredictor,
    /// Destination of the previously retired load (load-use interlock).
    last_load_rd: Option<XReg>,
}

impl InOrderModel {
    /// Creates the model with reset predictor tables.
    pub fn new(bpred: BpredConfig) -> Self {
        InOrderModel {
            bpred: BranchPredictor::new(bpred),
            last_load_rd: None,
        }
    }
}

impl CoreTimingModel for InOrderModel {
    fn kind(&self) -> CoreModelKind {
        CoreModelKind::InOrder
    }

    #[inline]
    fn retire(&mut self, r: &RetireInfo<'_>, costs: &ExecCosts, _now: u64) -> u64 {
        // Timing: base cycle + fetch + functional units + hazards.
        let mut cycles = 1 + r.fetch_cycles + r.extra_cycles;

        // Load-use interlock against the previous instruction.
        if let Some(load_rd) = self.last_load_rd {
            let (r1, r2) = r.inst.reads_xregs();
            if r1 == Some(load_rd) || r2 == Some(load_rd) {
                cycles += costs.load_use;
            }
        }
        self.last_load_rd = if r.mem_is_load {
            r.inst.writes_xreg()
        } else {
            None
        };

        // Branch-predictor timing.
        if let Some(b) = r.branch {
            if !r.branch_hinted {
                let seq_pc = r.pc.wrapping_add(4);
                match b {
                    BranchOutcome::Cond { taken, target } => {
                        cycles += self.bpred.resolve_branch(r.pc, taken, target);
                    }
                    BranchOutcome::Jal { target, link } => {
                        cycles += self.bpred.resolve_jal(r.pc, target);
                        if link {
                            self.bpred.push_return(seq_pc);
                        }
                    }
                    BranchOutcome::Jalr {
                        target,
                        link,
                        is_return,
                    } => {
                        cycles += self.bpred.resolve_jalr(r.pc, target, is_return);
                        if link {
                            self.bpred.push_return(seq_pc);
                        }
                    }
                }
            }
        }
        cycles
    }

    fn reset_replay_uarch(&mut self) {
        self.bpred.reset_tables();
        self.last_load_rd = None;
    }
}

/// A MEEK-class wide out-of-order superscalar timing model.
///
/// Architectural execution stays serial (the shared
/// [`ScalarExecutor`]); this model reconstructs *when* each
/// instruction would retire on a `width`-wide machine with a
/// `rob`-entry window:
///
/// - the front end dispatches up to `width` instructions per cycle,
///   delayed by fetch penalties and mispredict redirects;
/// - issue waits on a register scoreboard (absolute completion time per
///   architectural register);
/// - a full reorder window stalls dispatch until the oldest in-flight
///   instruction completes;
/// - retirement is in order, up to `width` per cycle, so the cycles
///   charged per retirement can be zero — IPC above 1 emerges through
///   the engine's unchanged `ready_at` contract.
#[derive(Debug)]
pub struct OooModel {
    width: u64,
    rob_size: usize,
    /// Branch predictor driving mispredict redirects.
    pub bpred: BranchPredictor,
    /// Absolute completion time of the last producer of each x-register.
    reg_ready: [u64; 32],
    /// Completion times of in-flight instructions, oldest first.
    rob: VecDeque<u64>,
    /// Current front-end dispatch cycle.
    slot_time: u64,
    /// Instructions dispatched in `slot_time`'s cycle.
    slot_used: u64,
    /// Absolute time of the previous retirement (in-order commit).
    last_retire: u64,
    /// Instructions retired in `last_retire`'s cycle.
    retire_used: u64,
}

impl OooModel {
    /// Creates the model; `width`/`rob` are clamped to at least 1.
    pub fn new(bpred: BpredConfig, width: u8, rob: u16) -> Self {
        OooModel {
            width: u64::from(width.max(1)),
            rob_size: usize::from(rob.max(1)),
            bpred: BranchPredictor::new(bpred),
            reg_ready: [0; 32],
            rob: VecDeque::new(),
            slot_time: 0,
            slot_used: 0,
            last_retire: 0,
            retire_used: 0,
        }
    }
}

impl CoreTimingModel for OooModel {
    fn kind(&self) -> CoreModelKind {
        CoreModelKind::OooSuperscalar {
            width: self.width as u8,
            rob: self.rob_size as u16,
        }
    }

    fn retire(&mut self, r: &RetireInfo<'_>, _costs: &ExecCosts, now: u64) -> u64 {
        // In steady state the engine hands back `now == last_retire`
        // (it charges exactly our returned delta). `now` ahead of that
        // means an externally imposed stall — kernel time, a segment
        // open, a context switch — which redirects the machine:
        // re-anchor the front end and the commit point. Otherwise the
        // front end deliberately runs *ahead* of retirement; only a
        // full reorder window or a mispredict redirect stalls it.
        if now > self.last_retire {
            self.slot_time = self.slot_time.max(now);
            self.slot_used = 0;
            self.last_retire = now;
            self.retire_used = 0;
        }
        if self.slot_used >= self.width {
            self.slot_time += 1;
            self.slot_used = 0;
        }
        // Fetch penalty delays this instruction's dispatch.
        let mut dispatch = self.slot_time + r.fetch_cycles;
        // Dataflow issue: wait for source operands.
        let (s1, s2) = r.inst.reads_xregs();
        for src in [s1, s2].into_iter().flatten() {
            dispatch = dispatch.max(self.reg_ready[src.index() as usize]);
        }
        // A full reorder window stalls dispatch until the oldest
        // in-flight instruction completes.
        while self.rob.len() >= self.rob_size {
            let oldest = self.rob.pop_front().expect("rob non-empty");
            dispatch = dispatch.max(oldest);
        }
        let complete = dispatch + 1 + r.extra_cycles;
        self.rob.push_back(complete);
        if let Some(rd) = r.inst.writes_xreg() {
            if rd != XReg::ZERO {
                self.reg_ready[rd.index() as usize] = complete;
            }
        }
        self.slot_used += 1;

        // Branches resolve at completion; a mispredict squashes the
        // window's younger work and redirects the front end.
        if let Some(b) = r.branch {
            if !r.branch_hinted {
                let seq_pc = r.pc.wrapping_add(4);
                let penalty = match b {
                    BranchOutcome::Cond { taken, target } => {
                        self.bpred.resolve_branch(r.pc, taken, target)
                    }
                    BranchOutcome::Jal { target, link } => {
                        let p = self.bpred.resolve_jal(r.pc, target);
                        if link {
                            self.bpred.push_return(seq_pc);
                        }
                        p
                    }
                    BranchOutcome::Jalr {
                        target,
                        link,
                        is_return,
                    } => {
                        let p = self.bpred.resolve_jalr(r.pc, target, is_return);
                        if link {
                            self.bpred.push_return(seq_pc);
                        }
                        p
                    }
                };
                if penalty > 0 {
                    self.slot_time = complete + penalty;
                    self.slot_used = 0;
                }
            }
        }

        // In-order retirement, `width` per cycle.
        let t = complete.max(self.last_retire);
        if t > self.last_retire {
            self.retire_used = 1;
            self.last_retire = t;
        } else if self.retire_used >= self.width {
            self.retire_used = 1;
            self.last_retire = t + 1;
        } else {
            self.retire_used += 1;
        }
        self.last_retire.saturating_sub(now)
    }

    fn reset_replay_uarch(&mut self) {
        self.bpred.reset_tables();
        self.reg_ready = [0; 32];
        self.rob.clear();
        self.slot_time = 0;
        self.slot_used = 0;
        self.last_retire = 0;
        self.retire_used = 0;
    }
}

/// Enum dispatch over the shipped timing models: the step loop stays
/// monomorphic (no `Box<dyn>` indirection on the hot path — the
/// `perf_report --guard` gate pins the in-order ns/step against the
/// pre-trait baseline).
#[derive(Debug)]
pub enum CoreModel {
    /// Single-issue in-order pipeline.
    InOrder(InOrderModel),
    /// Wide out-of-order superscalar (boxed: the window bookkeeping is
    /// ~3× the in-order model's footprint, and `Core` embeds this enum).
    Ooo(Box<OooModel>),
}

impl CoreModel {
    /// Instantiates the model a descriptor names.
    pub fn from_kind(kind: CoreModelKind, bpred: BpredConfig) -> Self {
        match kind {
            CoreModelKind::InOrder => CoreModel::InOrder(InOrderModel::new(bpred)),
            CoreModelKind::OooSuperscalar { width, rob } => {
                CoreModel::Ooo(Box::new(OooModel::new(bpred, width, rob)))
            }
        }
    }

    /// The descriptor this model was built from.
    #[inline]
    pub fn kind(&self) -> CoreModelKind {
        match self {
            CoreModel::InOrder(m) => m.kind(),
            CoreModel::Ooo(m) => m.kind(),
        }
    }

    /// See [`CoreTimingModel::retire`].
    #[inline]
    pub fn retire(&mut self, r: &RetireInfo<'_>, costs: &ExecCosts, now: u64) -> u64 {
        match self {
            CoreModel::InOrder(m) => m.retire(r, costs, now),
            CoreModel::Ooo(m) => m.retire(r, costs, now),
        }
    }

    /// See [`CoreTimingModel::reset_replay_uarch`].
    pub fn reset_replay_uarch(&mut self) {
        match self {
            CoreModel::InOrder(m) => m.reset_replay_uarch(),
            CoreModel::Ooo(m) => m.reset_replay_uarch(),
        }
    }

    /// The model's branch predictor (shared across kinds).
    pub fn bpred(&self) -> &BranchPredictor {
        match self {
            CoreModel::InOrder(m) => &m.bpred,
            CoreModel::Ooo(m) => &m.bpred,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexstep_isa::inst::{Inst, IntOp};

    fn alu_inst() -> Inst {
        // add a0, a0, a1 — reads a0/a1, writes a0.
        Inst::Op {
            op: IntOp::Add,
            rd: XReg::A0,
            rs1: XReg::A0,
            rs2: XReg::A1,
        }
    }

    fn indep_inst() -> Inst {
        // add a2, a3, a4 — no dependence on a0/a1.
        Inst::Op {
            op: IntOp::Add,
            rd: XReg::A2,
            rs1: XReg::A3,
            rs2: XReg::A4,
        }
    }

    fn retire_of(inst: &Inst) -> RetireInfo<'_> {
        RetireInfo {
            pc: 0x1000,
            inst,
            fetch_cycles: 0,
            extra_cycles: 0,
            mem_is_load: false,
            branch: None,
            branch_hinted: false,
        }
    }

    #[test]
    fn inorder_charges_one_cycle_per_alu_inst() {
        let mut m = InOrderModel::new(BpredConfig::paper());
        let costs = ExecCosts::paper();
        let inst = alu_inst();
        for now in 0..10u64 {
            assert_eq!(m.retire(&retire_of(&inst), &costs, now), 1);
        }
    }

    #[test]
    fn ooo_retires_independent_work_wider_than_one() {
        let mut m = OooModel::new(BpredConfig::paper(), 4, 32);
        let costs = ExecCosts::paper();
        let inst = indep_inst();
        // Four independent single-cycle instructions retire in the same
        // cycle: the first charges the pipeline's cycle, the rest are
        // free — IPC 4.
        let mut now = 0;
        let mut total = 0;
        for _ in 0..8 {
            let d = m.retire(&retire_of(&inst), &costs, now);
            now += d;
            total += d;
        }
        assert!(
            total <= 3,
            "8 independent insts on a 4-wide machine need <= 2 cycles, charged {total}"
        );
    }

    #[test]
    fn ooo_dependent_chain_serialises() {
        let mut m = OooModel::new(BpredConfig::paper(), 4, 32);
        let costs = ExecCosts::paper();
        let inst = alu_inst(); // a0 <- a0 + a1: loop-carried on a0
        let mut now = 0;
        let mut total = 0;
        for _ in 0..8 {
            let d = m.retire(&retire_of(&inst), &costs, now);
            now += d;
            total += d;
        }
        assert!(
            total >= 7,
            "a dependent chain cannot beat 1 IPC, charged {total}"
        );
    }

    #[test]
    fn ooo_rob_bounds_inflight_window() {
        // Width 4 but a 1-entry ROB degrades to serial dispatch.
        let mut m = OooModel::new(BpredConfig::paper(), 4, 1);
        let costs = ExecCosts::paper();
        let inst = indep_inst();
        let mut now = 0;
        let mut total = 0;
        for _ in 0..8 {
            let d = m.retire(&retire_of(&inst), &costs, now);
            now += d;
            total += d;
        }
        assert!(total >= 7, "rob=1 must serialise, charged {total}");
    }

    #[test]
    fn hinted_branches_charge_no_prediction_penalty() {
        let costs = ExecCosts::paper();
        let inst = alu_inst();
        let branch = Some(BranchOutcome::Cond {
            taken: true,
            target: 0x2000,
        });
        for hinted in [false, true] {
            let mut m = InOrderModel::new(BpredConfig::paper());
            let r = RetireInfo {
                branch,
                branch_hinted: hinted,
                ..retire_of(&inst)
            };
            let cycles = m.retire(&r, &costs, 0);
            if hinted {
                assert_eq!(cycles, 1, "hinted branch must not charge a penalty");
            } else {
                assert!(cycles > 1, "cold predictor must mispredict a taken branch");
            }
        }
    }

    #[test]
    fn reset_replay_uarch_restores_initial_timing() {
        let costs = ExecCosts::paper();
        let inst = alu_inst();
        let branch = Some(BranchOutcome::Cond {
            taken: true,
            target: 0x2000,
        });
        let r = RetireInfo {
            branch,
            ..retire_of(&inst)
        };
        let mut m = CoreModel::from_kind(CoreModelKind::ooo(), BpredConfig::paper());
        let first = m.retire(&r, &costs, 0);
        m.reset_replay_uarch();
        let again = m.retire(&r, &costs, 0);
        assert_eq!(first, again, "reset must restore cold-start timing");
    }
}
