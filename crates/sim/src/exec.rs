//! The instruction executor.
//!
//! [`execute`] applies one decoded instruction to an [`ArchState`], routing
//! data accesses through a [`DataPort`]. It is shared verbatim between main
//! cores (normal port) and FlexStep checker cores (replay port) — the
//! cornerstone of replay determinism: identical inputs produce identical
//! architectural effects.
//!
//! Traps leave the architectural state unmodified (`pc` still points at the
//! faulting instruction), matching precise-exception semantics.

use crate::hart::{ArchState, CsrCounters, PrivMode, TrapCause};
use crate::port::{amo_apply, DataPort, PortStop};
use crate::timing::ExecCosts;
use flexstep_isa::inst::*;
use flexstep_isa::reg::XReg;

/// A data-memory access performed by a retired instruction — exactly what
/// the FlexStep Memory Access Log records (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Access classification.
    pub kind: MemAccessKind,
    /// Effective address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// Loads/LR: raw loaded value. Stores/SC/AMO: value written.
    pub data: u64,
}

/// Classification of a logged memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAccessKind {
    /// Plain load (`lb`…`ld`, `fld`).
    Load,
    /// Plain store (`sb`…`sd`, `fsd`).
    Store,
    /// Load-reserved.
    Lr,
    /// Store-conditional, with its success flag (needed for replay).
    Sc {
        /// Whether the SC succeeded.
        success: bool,
    },
    /// Atomic read-modify-write, with the loaded (old) value (needed for
    /// replay).
    Amo {
        /// The old value read from memory.
        loaded: u64,
    },
}

/// Control-flow resolution of a retired instruction, consumed by the
/// branch-predictor timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchOutcome {
    /// Conditional branch.
    Cond {
        /// Whether the branch was taken.
        taken: bool,
        /// Branch target (valid when taken).
        target: u64,
    },
    /// Direct jump.
    Jal {
        /// Jump target.
        target: u64,
        /// Whether it links (writes a return address).
        link: bool,
    },
    /// Indirect jump.
    Jalr {
        /// Jump target.
        target: u64,
        /// Whether it links.
        link: bool,
        /// Whether it has the conventional `ret` shape.
        is_return: bool,
    },
}

/// Result of successfully executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exec {
    /// Next program counter.
    pub next_pc: u64,
    /// Memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// Cycles consumed by the data port plus long-latency functional
    /// units (base cycle and fetch excluded).
    pub extra_cycles: u64,
    /// Control-flow resolution, if any.
    pub branch: Option<BranchOutcome>,
}

/// Reasons the executor stops without retiring the instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stop {
    /// A synchronous trap; state is unmodified.
    Trap {
        /// The cause.
        cause: TrapCause,
        /// The trap value (`mtval`): faulting address or instruction.
        tval: u64,
    },
    /// A FlexStep custom instruction — the platform (OS / fabric) supplies
    /// its semantics; state is unmodified and `pc` still points at it.
    Flex {
        /// The custom operation.
        op: FlexOp,
        /// `rd` of the instruction.
        rd: XReg,
        /// Value of `rs1`.
        rs1_value: u64,
        /// Value of `rs2`.
        rs2_value: u64,
    },
    /// `wfi` — the core parks until an interrupt.
    Wfi,
    /// The data port aborted the access (checker detection path).
    Port(PortStop),
}

fn sign_extend(value: u64, size: u8) -> u64 {
    match size {
        1 => value as u8 as i8 as i64 as u64,
        2 => value as u16 as i16 as i64 as u64,
        4 => value as u32 as i32 as i64 as u64,
        _ => value,
    }
}

fn misaligned(addr: u64, size: u8) -> bool {
    addr & u64::from(size - 1) != 0
}

fn int_op(op: IntOp, a: u64, b: u64) -> u64 {
    match op {
        IntOp::Add => a.wrapping_add(b),
        IntOp::Sub => a.wrapping_sub(b),
        IntOp::Sll => a << (b & 63),
        IntOp::Slt => u64::from((a as i64) < (b as i64)),
        IntOp::Sltu => u64::from(a < b),
        IntOp::Xor => a ^ b,
        IntOp::Srl => a >> (b & 63),
        IntOp::Sra => ((a as i64) >> (b & 63)) as u64,
        IntOp::Or => a | b,
        IntOp::And => a & b,
        IntOp::Mul => a.wrapping_mul(b),
        IntOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        IntOp::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
        IntOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
        IntOp::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else if a == i64::MIN && b == -1 {
                a as u64
            } else {
                (a / b) as u64
            }
        }
        IntOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        IntOp::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else if a == i64::MIN && b == -1 {
                0
            } else {
                (a % b) as u64
            }
        }
        IntOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

fn int_w_op(op: IntWOp, a: u64, b: u64) -> u64 {
    let a32 = a as u32;
    let b32 = b as u32;
    let r = match op {
        IntWOp::Addw => a32.wrapping_add(b32),
        IntWOp::Subw => a32.wrapping_sub(b32),
        IntWOp::Sllw => a32 << (b32 & 31),
        IntWOp::Srlw => a32 >> (b32 & 31),
        IntWOp::Sraw => ((a32 as i32) >> (b32 & 31)) as u32,
        IntWOp::Mulw => a32.wrapping_mul(b32),
        IntWOp::Divw => {
            let (a, b) = (a32 as i32, b32 as i32);
            if b == 0 {
                u32::MAX
            } else if a == i32::MIN && b == -1 {
                a as u32
            } else {
                (a / b) as u32
            }
        }
        IntWOp::Divuw => a32.checked_div(b32).unwrap_or(u32::MAX),
        IntWOp::Remw => {
            let (a, b) = (a32 as i32, b32 as i32);
            if b == 0 {
                a as u32
            } else if a == i32::MIN && b == -1 {
                0
            } else {
                (a % b) as u32
            }
        }
        IntWOp::Remuw => {
            if b32 == 0 {
                a32
            } else {
                a32 % b32
            }
        }
    };
    r as i32 as i64 as u64
}

/// Saturating f64 → i64 conversion per the RISC-V spec.
fn fcvt_l(v: f64) -> i64 {
    if v.is_nan() || v >= i64::MAX as f64 {
        i64::MAX
    } else if v <= i64::MIN as f64 {
        i64::MIN
    } else {
        v as i64
    }
}

/// Saturating f64 → u64 conversion per the RISC-V spec.
fn fcvt_lu(v: f64) -> u64 {
    if v.is_nan() || v >= u64::MAX as f64 {
        u64::MAX
    } else if v <= 0.0 {
        0
    } else {
        v as u64
    }
}

/// Saturating f64 → i32 conversion per the RISC-V spec.
fn fcvt_w(v: f64) -> i32 {
    if v.is_nan() || v >= i32::MAX as f64 {
        i32::MAX
    } else if v <= i32::MIN as f64 {
        i32::MIN
    } else {
        v as i32
    }
}

/// Executes one instruction.
///
/// On success the state is updated (registers, CSRs, `pc`) and an [`Exec`]
/// describes the retirement. On [`Stop`] the state is unmodified.
///
/// # Errors
///
/// Returns [`Stop`] for traps, `wfi`, FlexStep custom instructions and
/// port-aborted accesses.
pub fn execute(
    state: &mut ArchState,
    inst: &Inst,
    counters: &CsrCounters,
    costs: &ExecCosts,
    port: &mut dyn DataPort,
    resv: &mut Option<u64>,
) -> Result<Exec, Stop> {
    let pc = state.pc;
    let seq_pc = pc.wrapping_add(4);
    let mut next_pc = seq_pc;
    let mut mem = None;
    let mut branch = None;
    let mut extra = costs.extra_cycles(inst);

    match *inst {
        Inst::Lui { rd, imm } => state.set_x(rd, imm as u64),
        Inst::Auipc { rd, imm } => state.set_x(rd, pc.wrapping_add(imm as u64)),
        Inst::Jal { rd, offset } => {
            let target = pc.wrapping_add(offset as u64);
            if !target.is_multiple_of(4) {
                return Err(Stop::Trap {
                    cause: TrapCause::InstAddrMisaligned,
                    tval: target,
                });
            }
            state.set_x(rd, seq_pc);
            next_pc = target;
            branch = Some(BranchOutcome::Jal {
                target,
                link: !rd.is_zero(),
            });
        }
        Inst::Jalr { rd, rs1, offset } => {
            let target = state.x(rs1).wrapping_add(offset as u64) & !1;
            if !target.is_multiple_of(4) {
                return Err(Stop::Trap {
                    cause: TrapCause::InstAddrMisaligned,
                    tval: target,
                });
            }
            let is_return = rd.is_zero() && rs1 == XReg::RA && offset == 0;
            state.set_x(rd, seq_pc);
            next_pc = target;
            branch = Some(BranchOutcome::Jalr {
                target,
                link: !rd.is_zero(),
                is_return,
            });
        }
        Inst::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let a = state.x(rs1);
            let b = state.x(rs2);
            let taken = match op {
                BranchOp::Eq => a == b,
                BranchOp::Ne => a != b,
                BranchOp::Lt => (a as i64) < (b as i64),
                BranchOp::Ge => (a as i64) >= (b as i64),
                BranchOp::Ltu => a < b,
                BranchOp::Geu => a >= b,
            };
            let target = pc.wrapping_add(offset as u64);
            if taken {
                if !target.is_multiple_of(4) {
                    return Err(Stop::Trap {
                        cause: TrapCause::InstAddrMisaligned,
                        tval: target,
                    });
                }
                next_pc = target;
            }
            branch = Some(BranchOutcome::Cond { taken, target });
        }
        Inst::Load {
            op,
            rd,
            rs1,
            offset,
        } => {
            let addr = state.x(rs1).wrapping_add(offset as u64);
            let size = op.size();
            if misaligned(addr, size) {
                return Err(Stop::Trap {
                    cause: TrapCause::LoadAddrMisaligned,
                    tval: addr,
                });
            }
            let (raw, cycles) = port.read(addr, size).map_err(Stop::Port)?;
            extra += cycles;
            let value = if op.is_signed() {
                sign_extend(raw, size)
            } else {
                raw
            };
            state.set_x(rd, value);
            mem = Some(MemAccess {
                kind: MemAccessKind::Load,
                addr,
                size,
                data: raw,
            });
        }
        Inst::Store {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let addr = state.x(rs1).wrapping_add(offset as u64);
            let size = op.size();
            if misaligned(addr, size) {
                return Err(Stop::Trap {
                    cause: TrapCause::StoreAddrMisaligned,
                    tval: addr,
                });
            }
            let mask = if size == 8 {
                u64::MAX
            } else {
                (1u64 << (size * 8)) - 1
            };
            let value = state.x(rs2) & mask;
            let cycles = port.write(addr, value, size).map_err(Stop::Port)?;
            extra += cycles;
            mem = Some(MemAccess {
                kind: MemAccessKind::Store,
                addr,
                size,
                data: value,
            });
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            let a = state.x(rs1);
            let v = match op {
                IntImmOp::Addi => a.wrapping_add(imm as u64),
                IntImmOp::Slti => u64::from((a as i64) < imm),
                IntImmOp::Sltiu => u64::from(a < imm as u64),
                IntImmOp::Xori => a ^ imm as u64,
                IntImmOp::Ori => a | imm as u64,
                IntImmOp::Andi => a & imm as u64,
                IntImmOp::Slli => a << (imm & 63),
                IntImmOp::Srli => a >> (imm & 63),
                IntImmOp::Srai => ((a as i64) >> (imm & 63)) as u64,
            };
            state.set_x(rd, v);
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            let v = int_op(op, state.x(rs1), state.x(rs2));
            state.set_x(rd, v);
        }
        Inst::OpImmW { op, rd, rs1, imm } => {
            let a = state.x(rs1);
            let v = match op {
                IntImmWOp::Addiw => (a.wrapping_add(imm as u64) as i32) as i64 as u64,
                IntImmWOp::Slliw => (((a as u32) << (imm & 31)) as i32) as i64 as u64,
                IntImmWOp::Srliw => (((a as u32) >> (imm & 31)) as i32) as i64 as u64,
                IntImmWOp::Sraiw => (((a as u32 as i32) >> (imm & 31)) as i64) as u64,
            };
            state.set_x(rd, v);
        }
        Inst::OpW { op, rd, rs1, rs2 } => {
            let v = int_w_op(op, state.x(rs1), state.x(rs2));
            state.set_x(rd, v);
        }
        Inst::Lr { width, rd, rs1 } => {
            let addr = state.x(rs1);
            let size = width.size();
            if misaligned(addr, size) {
                return Err(Stop::Trap {
                    cause: TrapCause::LoadAddrMisaligned,
                    tval: addr,
                });
            }
            let (raw, cycles) = port.read(addr, size).map_err(Stop::Port)?;
            extra += cycles;
            state.set_x(rd, sign_extend(raw, size));
            *resv = Some(addr);
            mem = Some(MemAccess {
                kind: MemAccessKind::Lr,
                addr,
                size,
                data: raw,
            });
        }
        Inst::Sc {
            width,
            rd,
            rs1,
            rs2,
        } => {
            let addr = state.x(rs1);
            let size = width.size();
            if misaligned(addr, size) {
                return Err(Stop::Trap {
                    cause: TrapCause::StoreAddrMisaligned,
                    tval: addr,
                });
            }
            let mask = if size == 8 {
                u64::MAX
            } else {
                (1u64 << (size * 8)) - 1
            };
            let value = state.x(rs2) & mask;
            let resv_valid = *resv == Some(addr);
            let (success, cycles) = port
                .store_conditional(addr, value, size, resv_valid)
                .map_err(Stop::Port)?;
            extra += cycles;
            *resv = None;
            state.set_x(rd, u64::from(!success));
            mem = Some(MemAccess {
                kind: MemAccessKind::Sc { success },
                addr,
                size,
                data: value,
            });
        }
        Inst::Amo {
            op,
            width,
            rd,
            rs1,
            rs2,
        } => {
            let addr = state.x(rs1);
            let size = width.size();
            if misaligned(addr, size) {
                return Err(Stop::Trap {
                    cause: TrapCause::StoreAddrMisaligned,
                    tval: addr,
                });
            }
            let src = state.x(rs2);
            let (old, cycles) = port.amo(addr, width, op, src).map_err(Stop::Port)?;
            extra += cycles;
            let stored = amo_apply(op, width, old, src);
            let mask = if size == 8 {
                u64::MAX
            } else {
                (1u64 << (size * 8)) - 1
            };
            state.set_x(rd, sign_extend(old & mask, size));
            mem = Some(MemAccess {
                kind: MemAccessKind::Amo { loaded: old & mask },
                addr,
                size,
                data: stored & mask,
            });
        }
        Inst::Csr { op, rd, src, csr } => {
            let old = state.read_csr(csr, counters).map_err(|_| Stop::Trap {
                cause: TrapCause::IllegalInstruction,
                tval: 0,
            })?;
            let operand = if op.is_immediate() {
                u64::from(src)
            } else {
                state.x(XReg::of(src))
            };
            let new = match op {
                CsrOp::Rw | CsrOp::Rwi => Some(operand),
                CsrOp::Rs | CsrOp::Rsi => {
                    if operand == 0 {
                        None
                    } else {
                        Some(old | operand)
                    }
                }
                CsrOp::Rc | CsrOp::Rci => {
                    if operand == 0 {
                        None
                    } else {
                        Some(old & !operand)
                    }
                }
            };
            // CSR access requires privilege: machine CSRs fault from U-mode.
            let machine_csr = csr < 0xC00 && csr != flexstep_isa::csr::FCSR;
            if machine_csr && state.prv == PrivMode::User {
                return Err(Stop::Trap {
                    cause: TrapCause::IllegalInstruction,
                    tval: 0,
                });
            }
            if let Some(new) = new {
                state.write_csr(csr, new).map_err(|_| Stop::Trap {
                    cause: TrapCause::IllegalInstruction,
                    tval: 0,
                })?;
            }
            state.set_x(rd, old);
        }
        Inst::Fld { rd, rs1, offset } => {
            let addr = state.x(rs1).wrapping_add(offset as u64);
            if misaligned(addr, 8) {
                return Err(Stop::Trap {
                    cause: TrapCause::LoadAddrMisaligned,
                    tval: addr,
                });
            }
            let (raw, cycles) = port.read(addr, 8).map_err(Stop::Port)?;
            extra += cycles;
            state.set_f_bits(rd, raw);
            mem = Some(MemAccess {
                kind: MemAccessKind::Load,
                addr,
                size: 8,
                data: raw,
            });
        }
        Inst::Fsd { rs1, rs2, offset } => {
            let addr = state.x(rs1).wrapping_add(offset as u64);
            if misaligned(addr, 8) {
                return Err(Stop::Trap {
                    cause: TrapCause::StoreAddrMisaligned,
                    tval: addr,
                });
            }
            let value = state.f_bits(rs2);
            let cycles = port.write(addr, value, 8).map_err(Stop::Port)?;
            extra += cycles;
            mem = Some(MemAccess {
                kind: MemAccessKind::Store,
                addr,
                size: 8,
                data: value,
            });
        }
        Inst::Fp { op, rd, rs1, rs2 } => {
            let a = state.f(rs1);
            let b = state.f(rs2);
            let v = match op {
                FpOp::Add => a + b,
                FpOp::Sub => a - b,
                FpOp::Mul => a * b,
                FpOp::Div => a / b,
                FpOp::Min => a.min(b),
                FpOp::Max => a.max(b),
                FpOp::SgnJ => f64::from_bits(
                    (state.f_bits(rs1) & !(1 << 63)) | (state.f_bits(rs2) & (1 << 63)),
                ),
                FpOp::SgnJN => f64::from_bits(
                    (state.f_bits(rs1) & !(1 << 63)) | (!state.f_bits(rs2) & (1 << 63)),
                ),
                FpOp::SgnJX => f64::from_bits(state.f_bits(rs1) ^ (state.f_bits(rs2) & (1 << 63))),
            };
            state.set_f(rd, v);
        }
        Inst::FpSqrt { rd, rs1 } => {
            let v = state.f(rs1).sqrt();
            state.set_f(rd, v);
        }
        Inst::Fma {
            op,
            rd,
            rs1,
            rs2,
            rs3,
        } => {
            let a = state.f(rs1);
            let b = state.f(rs2);
            let c = state.f(rs3);
            let v = match op {
                FmaOp::Madd => a.mul_add(b, c),
                FmaOp::Msub => a.mul_add(b, -c),
                FmaOp::Nmsub => (-a).mul_add(b, c),
                FmaOp::Nmadd => (-a).mul_add(b, -c),
            };
            state.set_f(rd, v);
        }
        Inst::FpCmp { op, rd, rs1, rs2 } => {
            let a = state.f(rs1);
            let b = state.f(rs2);
            let v = match op {
                FpCmpOp::Eq => a == b,
                FpCmpOp::Lt => a < b,
                FpCmpOp::Le => a <= b,
            };
            state.set_x(rd, u64::from(v));
        }
        Inst::FpCvt { op, rd, rs1 } => match op {
            FpCvtOp::DToL => {
                let v = state.f(flexstep_isa::FReg::of(rs1));
                state.set_x(XReg::of(rd), fcvt_l(v) as u64);
            }
            FpCvtOp::DToLu => {
                let v = state.f(flexstep_isa::FReg::of(rs1));
                state.set_x(XReg::of(rd), fcvt_lu(v));
            }
            FpCvtOp::DToW => {
                let v = state.f(flexstep_isa::FReg::of(rs1));
                state.set_x(XReg::of(rd), fcvt_w(v) as i64 as u64);
            }
            FpCvtOp::LToD => {
                let v = state.x(XReg::of(rs1)) as i64;
                state.set_f(flexstep_isa::FReg::of(rd), v as f64);
            }
            FpCvtOp::LuToD => {
                let v = state.x(XReg::of(rs1));
                state.set_f(flexstep_isa::FReg::of(rd), v as f64);
            }
            FpCvtOp::WToD => {
                let v = state.x(XReg::of(rs1)) as i32;
                state.set_f(flexstep_isa::FReg::of(rd), f64::from(v));
            }
        },
        Inst::FmvXD { rd, rs1 } => {
            let bits = state.f_bits(rs1);
            state.set_x(rd, bits);
        }
        Inst::FmvDX { rd, rs1 } => {
            let bits = state.x(rs1);
            state.set_f_bits(rd, bits);
        }
        Inst::Fence => {}
        Inst::Ecall => {
            let cause = match state.prv {
                PrivMode::User => TrapCause::EcallFromU,
                PrivMode::Machine => TrapCause::EcallFromM,
            };
            return Err(Stop::Trap { cause, tval: 0 });
        }
        Inst::Ebreak => {
            return Err(Stop::Trap {
                cause: TrapCause::Breakpoint,
                tval: pc,
            });
        }
        Inst::Mret => {
            if state.prv != PrivMode::Machine {
                return Err(Stop::Trap {
                    cause: TrapCause::IllegalInstruction,
                    tval: 0,
                });
            }
            state.leave_trap();
            return Ok(Exec {
                next_pc: state.pc,
                mem: None,
                extra_cycles: extra,
                branch: None,
            });
        }
        Inst::Wfi => return Err(Stop::Wfi),
        Inst::Flex { op, rd, rs1, rs2 } => {
            return Err(Stop::Flex {
                op,
                rd,
                rs1_value: state.x(rs1),
                rs2_value: state.x(rs2),
            });
        }
    }

    state.pc = next_pc;
    Ok(Exec {
        next_pc,
        mem,
        extra_cycles: extra,
        branch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::SocDataPort;
    use flexstep_isa::FReg;
    use flexstep_mem::{MemoryConfig, MemorySystem};

    struct Ctx {
        state: ArchState,
        mem: MemorySystem,
        resv: Option<u64>,
    }

    impl Ctx {
        fn new() -> Self {
            let mut state = ArchState::new(0);
            state.prv = PrivMode::User;
            state.pc = 0x1000;
            Ctx {
                state,
                mem: MemorySystem::new(1, MemoryConfig::paper()).unwrap(),
                resv: None,
            }
        }

        fn run(&mut self, inst: Inst) -> Result<Exec, Stop> {
            let counters = CsrCounters::default();
            let costs = ExecCosts::paper();
            let mut port = SocDataPort::new(&mut self.mem, 0);
            execute(
                &mut self.state,
                &inst,
                &counters,
                &costs,
                &mut port,
                &mut self.resv,
            )
        }
    }

    #[test]
    fn addi_and_pc_advance() {
        let mut c = Ctx::new();
        c.run(Inst::OpImm {
            op: IntImmOp::Addi,
            rd: XReg::A0,
            rs1: XReg::ZERO,
            imm: 5,
        })
        .unwrap();
        assert_eq!(c.state.x(XReg::A0), 5);
        assert_eq!(c.state.pc, 0x1004);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let mut c = Ctx::new();
        c.state.set_x(XReg::A0, 1);
        let e = c
            .run(Inst::Branch {
                op: BranchOp::Eq,
                rs1: XReg::A0,
                rs2: XReg::ZERO,
                offset: 16,
            })
            .unwrap();
        assert_eq!(c.state.pc, 0x1004);
        assert_eq!(
            e.branch,
            Some(BranchOutcome::Cond {
                taken: false,
                target: 0x1010
            })
        );
        let e = c
            .run(Inst::Branch {
                op: BranchOp::Ne,
                rs1: XReg::A0,
                rs2: XReg::ZERO,
                offset: -4,
            })
            .unwrap();
        assert_eq!(c.state.pc, 0x1000);
        assert_eq!(
            e.branch,
            Some(BranchOutcome::Cond {
                taken: true,
                target: 0x1000
            })
        );
    }

    #[test]
    fn load_store_roundtrip_with_sign_extension() {
        let mut c = Ctx::new();
        c.state.set_x(XReg::A1, 0x2000);
        c.state.set_x(XReg::A2, 0xFF80);
        c.run(Inst::Store {
            op: StoreOp::Sh,
            rs1: XReg::A1,
            rs2: XReg::A2,
            offset: 0,
        })
        .unwrap();
        c.run(Inst::Load {
            op: LoadOp::Lh,
            rd: XReg::A3,
            rs1: XReg::A1,
            offset: 0,
        })
        .unwrap();
        assert_eq!(c.state.x(XReg::A3) as i64, -128);
        c.run(Inst::Load {
            op: LoadOp::Lhu,
            rd: XReg::A4,
            rs1: XReg::A1,
            offset: 0,
        })
        .unwrap();
        assert_eq!(c.state.x(XReg::A4), 0xFF80);
    }

    #[test]
    fn misaligned_load_traps_without_state_change() {
        let mut c = Ctx::new();
        c.state.set_x(XReg::A1, 0x2001);
        let r = c.run(Inst::Load {
            op: LoadOp::Lw,
            rd: XReg::A0,
            rs1: XReg::A1,
            offset: 0,
        });
        assert_eq!(
            r,
            Err(Stop::Trap {
                cause: TrapCause::LoadAddrMisaligned,
                tval: 0x2001
            })
        );
        assert_eq!(c.state.pc, 0x1000, "trap must not advance pc");
        assert_eq!(c.state.x(XReg::A0), 0, "trap must not write rd");
    }

    #[test]
    fn division_edge_cases() {
        let mut c = Ctx::new();
        c.state.set_x(XReg::A1, 10);
        c.state.set_x(XReg::A2, 0);
        c.run(Inst::Op {
            op: IntOp::Div,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        })
        .unwrap();
        assert_eq!(c.state.x(XReg::A0), u64::MAX, "div by zero is all-ones");
        c.run(Inst::Op {
            op: IntOp::Rem,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        })
        .unwrap();
        assert_eq!(c.state.x(XReg::A0), 10, "rem by zero returns dividend");
        c.state.set_x(XReg::A1, i64::MIN as u64);
        c.state.set_x(XReg::A2, (-1i64) as u64);
        c.run(Inst::Op {
            op: IntOp::Div,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        })
        .unwrap();
        assert_eq!(
            c.state.x(XReg::A0),
            i64::MIN as u64,
            "overflow wraps to MIN"
        );
    }

    #[test]
    fn word_ops_sign_extend() {
        let mut c = Ctx::new();
        c.state.set_x(XReg::A1, 0x7FFF_FFFF);
        c.state.set_x(XReg::A2, 1);
        c.run(Inst::OpW {
            op: IntWOp::Addw,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        })
        .unwrap();
        assert_eq!(c.state.x(XReg::A0), 0xFFFF_FFFF_8000_0000);
    }

    #[test]
    fn lr_sc_success_and_failure() {
        let mut c = Ctx::new();
        c.state.set_x(XReg::A1, 0x3000);
        c.state.set_x(XReg::A2, 42);
        c.run(Inst::Lr {
            width: AmoWidth::D,
            rd: XReg::A0,
            rs1: XReg::A1,
        })
        .unwrap();
        let e = c
            .run(Inst::Sc {
                width: AmoWidth::D,
                rd: XReg::A3,
                rs1: XReg::A1,
                rs2: XReg::A2,
            })
            .unwrap();
        assert_eq!(c.state.x(XReg::A3), 0, "sc success writes 0");
        assert!(matches!(
            e.mem,
            Some(MemAccess {
                kind: MemAccessKind::Sc { success: true },
                ..
            })
        ));
        assert_eq!(c.mem.phys().read_u64(0x3000), 42);
        // Second SC without a reservation fails.
        let e = c
            .run(Inst::Sc {
                width: AmoWidth::D,
                rd: XReg::A3,
                rs1: XReg::A1,
                rs2: XReg::A2,
            })
            .unwrap();
        assert_eq!(c.state.x(XReg::A3), 1, "sc failure writes 1");
        assert!(matches!(
            e.mem,
            Some(MemAccess {
                kind: MemAccessKind::Sc { success: false },
                ..
            })
        ));
    }

    #[test]
    fn amo_returns_old_and_stores_new() {
        let mut c = Ctx::new();
        c.mem.phys_mut().write_u64(0x4000, 7);
        c.state.set_x(XReg::A1, 0x4000);
        c.state.set_x(XReg::A2, 3);
        let e = c
            .run(Inst::Amo {
                op: AmoOp::Add,
                width: AmoWidth::D,
                rd: XReg::A0,
                rs1: XReg::A1,
                rs2: XReg::A2,
            })
            .unwrap();
        assert_eq!(c.state.x(XReg::A0), 7);
        assert_eq!(c.mem.phys().read_u64(0x4000), 10);
        let m = e.mem.unwrap();
        assert_eq!(m.kind, MemAccessKind::Amo { loaded: 7 });
        assert_eq!(m.data, 10);
    }

    #[test]
    fn fp_arithmetic_and_compare() {
        let mut c = Ctx::new();
        c.state.set_f(FReg::of(1), 1.5);
        c.state.set_f(FReg::of(2), 2.5);
        c.run(Inst::Fp {
            op: FpOp::Add,
            rd: FReg::of(0),
            rs1: FReg::of(1),
            rs2: FReg::of(2),
        })
        .unwrap();
        assert_eq!(c.state.f(FReg::of(0)), 4.0);
        c.run(Inst::Fma {
            op: FmaOp::Madd,
            rd: FReg::of(3),
            rs1: FReg::of(1),
            rs2: FReg::of(2),
            rs3: FReg::of(0),
        })
        .unwrap();
        assert_eq!(c.state.f(FReg::of(3)), 1.5 * 2.5 + 4.0);
        c.run(Inst::FpCmp {
            op: FpCmpOp::Lt,
            rd: XReg::A0,
            rs1: FReg::of(1),
            rs2: FReg::of(2),
        })
        .unwrap();
        assert_eq!(c.state.x(XReg::A0), 1);
    }

    #[test]
    fn fcvt_saturates() {
        let mut c = Ctx::new();
        c.state.set_f(FReg::of(1), f64::NAN);
        c.run(Inst::FpCvt {
            op: FpCvtOp::DToL,
            rd: 10,
            rs1: 1,
        })
        .unwrap();
        assert_eq!(c.state.x(XReg::A0), i64::MAX as u64);
        c.state.set_f(FReg::of(1), -1.0);
        c.run(Inst::FpCvt {
            op: FpCvtOp::DToLu,
            rd: 10,
            rs1: 1,
        })
        .unwrap();
        assert_eq!(c.state.x(XReg::A0), 0);
    }

    #[test]
    fn ecall_cause_tracks_privilege() {
        let mut c = Ctx::new();
        assert_eq!(
            c.run(Inst::Ecall),
            Err(Stop::Trap {
                cause: TrapCause::EcallFromU,
                tval: 0
            })
        );
        c.state.prv = PrivMode::Machine;
        assert_eq!(
            c.run(Inst::Ecall),
            Err(Stop::Trap {
                cause: TrapCause::EcallFromM,
                tval: 0
            })
        );
    }

    #[test]
    fn machine_csr_faults_from_user() {
        let mut c = Ctx::new();
        let r = c.run(Inst::Csr {
            op: CsrOp::Rw,
            rd: XReg::A0,
            src: 10,
            csr: flexstep_isa::csr::MEPC,
        });
        assert_eq!(
            r,
            Err(Stop::Trap {
                cause: TrapCause::IllegalInstruction,
                tval: 0
            })
        );
        // User counters are readable from U-mode.
        c.run(Inst::Csr {
            op: CsrOp::Rs,
            rd: XReg::A0,
            src: 0,
            csr: flexstep_isa::csr::CYCLE,
        })
        .unwrap();
    }

    #[test]
    fn flex_instruction_surfaces_operands() {
        let mut c = Ctx::new();
        c.state.set_x(XReg::A1, 0xAA);
        c.state.set_x(XReg::A2, 0xBB);
        let r = c.run(Inst::Flex {
            op: FlexOp::MAssociate,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        });
        assert_eq!(
            r,
            Err(Stop::Flex {
                op: FlexOp::MAssociate,
                rd: XReg::A0,
                rs1_value: 0xAA,
                rs2_value: 0xBB
            })
        );
        assert_eq!(
            c.state.pc, 0x1000,
            "platform instruction does not self-advance"
        );
    }

    #[test]
    fn mret_requires_machine_mode() {
        let mut c = Ctx::new();
        assert!(matches!(c.run(Inst::Mret), Err(Stop::Trap { .. })));
        c.state.prv = PrivMode::Machine;
        c.state.csrs.mepc = 0x5000;
        c.state.csrs.mstatus = 0; // MPP=U
        let e = c.run(Inst::Mret).unwrap();
        assert_eq!(e.next_pc, 0x5000);
        assert_eq!(c.state.prv, PrivMode::User);
    }

    #[test]
    fn jalr_return_shape_detected() {
        let mut c = Ctx::new();
        c.state.set_x(XReg::RA, 0x1234);
        let e = c
            .run(Inst::Jalr {
                rd: XReg::ZERO,
                rs1: XReg::RA,
                offset: 0,
            })
            .unwrap();
        assert_eq!(
            e.branch,
            Some(BranchOutcome::Jalr {
                target: 0x1234,
                link: false,
                is_return: true
            })
        );
    }
}
