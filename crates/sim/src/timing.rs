//! Timing constants and clock conversions.
//!
//! Per-instruction execution costs for the in-order 5-stage Rocket model.
//! Base CPI is 1; long-latency functional units (the single DIV/FPU of
//! Tab. II) and hazards add cycles on top. Memory-access cycles come from
//! the hierarchy model in `flexstep-mem`, not from these constants.

use flexstep_isa::inst::{Inst, IntOp, IntWOp};

/// Functional-unit latencies in cycles (beyond the 1-cycle base).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecCosts {
    /// Integer multiply extra cycles.
    pub mul: u64,
    /// Integer divide extra cycles (iterative divider).
    pub div: u64,
    /// FP add/sub/mul extra cycles (pipelined FPU result latency).
    pub fp_alu: u64,
    /// FP divide extra cycles.
    pub fdiv: u64,
    /// FP square root extra cycles.
    pub fsqrt: u64,
    /// Fused multiply-add extra cycles.
    pub fma: u64,
    /// CSR instruction extra cycles (pipeline serialisation).
    pub csr: u64,
    /// AMO extra cycles beyond the memory access itself.
    pub amo: u64,
    /// Load-use interlock stall.
    pub load_use: u64,
}

impl ExecCosts {
    /// Costs of the evaluated Rocket configuration.
    pub fn paper() -> Self {
        ExecCosts {
            mul: 3,
            div: 32,
            fp_alu: 3,
            fdiv: 20,
            fsqrt: 25,
            fma: 4,
            csr: 2,
            amo: 2,
            load_use: 1,
        }
    }

    /// Extra execution cycles for an instruction (memory time excluded).
    pub fn extra_cycles(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::Op { op, .. } => match op {
                IntOp::Mul | IntOp::Mulh | IntOp::Mulhsu | IntOp::Mulhu => self.mul,
                IntOp::Div | IntOp::Divu | IntOp::Rem | IntOp::Remu => self.div,
                _ => 0,
            },
            Inst::OpW { op, .. } => match op {
                IntWOp::Mulw => self.mul,
                IntWOp::Divw | IntWOp::Divuw | IntWOp::Remw | IntWOp::Remuw => self.div,
                _ => 0,
            },
            Inst::Fp { op, .. } => match op {
                flexstep_isa::inst::FpOp::Div => self.fdiv,
                _ => self.fp_alu,
            },
            Inst::FpSqrt { .. } => self.fsqrt,
            Inst::Fma { .. } => self.fma,
            Inst::FpCmp { .. } | Inst::FpCvt { .. } => self.fp_alu,
            Inst::Csr { .. } => self.csr,
            Inst::Amo { .. } | Inst::Lr { .. } | Inst::Sc { .. } => self.amo,
            _ => 0,
        }
    }
}

impl Default for ExecCosts {
    fn default() -> Self {
        Self::paper()
    }
}

/// Core clock used to convert cycles to wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clock {
    /// Frequency in hertz.
    pub hz: f64,
}

impl Clock {
    /// The evaluated 1.6 GHz Rocket clock (Tab. II).
    pub fn paper() -> Self {
        Clock { hz: 1.6e9 }
    }

    /// Converts cycles to microseconds.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.hz * 1e6
    }

    /// Converts microseconds to (rounded) cycles.
    pub fn us_to_cycles(&self, us: f64) -> u64 {
        (us * self.hz / 1e6).round() as u64
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexstep_isa::XReg;

    #[test]
    fn base_alu_has_no_extra_cost() {
        let c = ExecCosts::paper();
        assert_eq!(c.extra_cycles(&Inst::NOP), 0);
        assert_eq!(
            c.extra_cycles(&Inst::Op {
                op: IntOp::Add,
                rd: XReg::A0,
                rs1: XReg::A1,
                rs2: XReg::A2
            }),
            0
        );
    }

    #[test]
    fn long_latency_units_charged() {
        let c = ExecCosts::paper();
        let div = Inst::Op {
            op: IntOp::Div,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        };
        assert_eq!(c.extra_cycles(&div), 32);
        let fsqrt = Inst::FpSqrt {
            rd: flexstep_isa::FReg::of(0),
            rs1: flexstep_isa::FReg::of(1),
        };
        assert_eq!(c.extra_cycles(&fsqrt), 25);
    }

    #[test]
    fn clock_conversion_roundtrip() {
        let clk = Clock::paper();
        assert!((clk.cycles_to_us(1600) - 1.0).abs() < 1e-12);
        assert_eq!(clk.us_to_cycles(1.0), 1600);
        assert_eq!(clk.us_to_cycles(clk.cycles_to_us(123_456)), 123_456);
    }
}
