//! # flexstep-sim
//!
//! A Rocket-like in-order RV64 multi-core simulator: per-hart architectural
//! state with M/U privilege modes and precise traps, an instruction
//! executor shared between normal execution and FlexStep checker replay,
//! 5-stage-pipeline timing (branch predictor, load-use interlock,
//! functional-unit latencies) over the `flexstep-mem` hierarchy, and an
//! event-driven multi-core [`Soc`] engine.
//!
//! The FlexStep error-detection units attach on top of this crate
//! (`flexstep-core`); the OS layer drives it (`flexstep-kernel`).
//!
//! ## Example
//!
//! ```
//! use flexstep_isa::{asm::Assembler, XReg};
//! use flexstep_sim::{Soc, SocConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Assembler::new("triangular");
//! asm.li(XReg::A0, 0);
//! asm.li(XReg::A1, 100);
//! asm.label("loop")?;
//! asm.add(XReg::A0, XReg::A0, XReg::A1);
//! asm.addi(XReg::A1, XReg::A1, -1);
//! asm.bnez(XReg::A1, "loop");
//! asm.ecall();
//! let program = asm.finish()?;
//!
//! let mut soc = Soc::new(SocConfig::paper(1))?;
//! soc.run_to_ecall(&program, 10_000);
//! assert_eq!(soc.core(0).state.x(XReg::A0), 5050);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bpred;
pub mod core;
pub mod exec;
pub mod hart;
pub mod model;
pub mod port;
pub(crate) mod ready;
pub mod soc;
pub mod timing;

pub use crate::core::{Core, RunState};
pub use bpred::{BpredConfig, BranchPredictor};
pub use exec::{BranchOutcome, MemAccess, MemAccessKind};
pub use flexstep_soc::{
    CoreModelKind, PairingAction, PairingEvent, PairingSchedule, ReliabilityMode, RELIABILITY_MODES,
};
pub use hart::{ArchSnapshot, ArchState, CsrCounters, PrivMode, TrapCause};
pub use model::{
    CoreModel, CoreTimingModel, InOrderModel, InstructionExecutor, OooModel, RetireInfo,
    ScalarExecutor,
};
pub use port::{amo_apply, DataPort, PortStop, SocDataPort};
pub use soc::{Retired, SchedMode, Soc, SocConfig, StepKind, StepResult};
pub use timing::{Clock, ExecCosts};
