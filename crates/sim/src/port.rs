//! Data-access ports.
//!
//! The executor performs all data-memory traffic through the [`DataPort`]
//! trait. A normal core binds a [`SocDataPort`] onto the shared
//! [`MemorySystem`]; a FlexStep checker core in replay mode substitutes a
//! log-backed port (`flexstep-core`), which is precisely how the paper's
//! checker "halts memory access and sequentially replays the checking
//! segments" (§II) — same executor, different port.

use flexstep_isa::inst::{AmoOp, AmoWidth};
use flexstep_mem::MemorySystem;
use std::fmt;

/// Raised by a port to abort the current instruction.
///
/// The normal port never raises it; replay ports raise it when the
/// replayed access diverges from the log (a detection event) or when the
/// log underruns. The typed detail lives in the port; this carries a
/// human-readable reason for traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortStop {
    /// Human-readable reason.
    pub reason: String,
}

impl PortStop {
    /// Creates a stop with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        PortStop {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for PortStop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port stop: {}", self.reason)
    }
}

impl std::error::Error for PortStop {}

/// Where the executor sends data-memory accesses.
///
/// All methods return the access latency in cycles alongside their values.
///
/// # Errors
///
/// Implementations return [`PortStop`] to abort the instruction; the
/// normal memory port is infallible in practice.
pub trait DataPort {
    /// Data read of `size` bytes; the value is the raw zero-extended
    /// memory content (the executor applies sign extension).
    fn read(&mut self, addr: u64, size: u8) -> Result<(u64, u64), PortStop>;

    /// Data write of the low `size` bytes of `value`.
    fn write(&mut self, addr: u64, value: u64, size: u8) -> Result<u64, PortStop>;

    /// Store-conditional; `resv_valid` reports whether the core's local
    /// reservation covers `addr`. Returns `(success, cycles)`.
    fn store_conditional(
        &mut self,
        addr: u64,
        value: u64,
        size: u8,
        resv_valid: bool,
    ) -> Result<(bool, u64), PortStop>;

    /// Atomic read-modify-write with operand `src`. Returns
    /// `(old_value, cycles)`; the stored value is `amo_apply(op, width,
    /// old, src)`.
    fn amo(
        &mut self,
        addr: u64,
        width: AmoWidth,
        op: AmoOp,
        src: u64,
    ) -> Result<(u64, u64), PortStop>;

    /// Offered the architectural outcome (`actual_next_pc`) of a
    /// just-retired control-flow instruction. Returns `Ok(true)` when the
    /// port supplied a matching forwarded outcome (the core then skips
    /// its own branch-prediction timing — MEEK-style outcome forwarding),
    /// `Ok(false)` when the port has no opinion (normal memory; replay of
    /// an in-order main's stream, which carries no outcome packets).
    ///
    /// # Errors
    ///
    /// Replay ports return [`PortStop`] when a forwarded outcome
    /// *disagrees* with the retirement — a divergence detection, handled
    /// like any data-log mismatch.
    fn branch_outcome(&mut self, actual_next_pc: u64) -> Result<bool, PortStop> {
        let _ = actual_next_pc;
        Ok(false)
    }
}

/// Computes the stored value of an AMO.
pub fn amo_apply(op: AmoOp, width: AmoWidth, old: u64, src: u64) -> u64 {
    match width {
        AmoWidth::D => amo_apply64(op, old, src),
        AmoWidth::W => {
            let old32 = old as u32;
            let src32 = src as u32;
            amo_apply32(op, old32, src32) as u64
        }
    }
}

fn amo_apply64(op: AmoOp, old: u64, src: u64) -> u64 {
    match op {
        AmoOp::Swap => src,
        AmoOp::Add => old.wrapping_add(src),
        AmoOp::Xor => old ^ src,
        AmoOp::And => old & src,
        AmoOp::Or => old | src,
        AmoOp::Min => ((old as i64).min(src as i64)) as u64,
        AmoOp::Max => ((old as i64).max(src as i64)) as u64,
        AmoOp::Minu => old.min(src),
        AmoOp::Maxu => old.max(src),
    }
}

fn amo_apply32(op: AmoOp, old: u32, src: u32) -> u32 {
    match op {
        AmoOp::Swap => src,
        AmoOp::Add => old.wrapping_add(src),
        AmoOp::Xor => old ^ src,
        AmoOp::And => old & src,
        AmoOp::Or => old | src,
        AmoOp::Min => ((old as i32).min(src as i32)) as u32,
        AmoOp::Max => ((old as i32).max(src as i32)) as u32,
        AmoOp::Minu => old.min(src),
        AmoOp::Maxu => old.max(src),
    }
}

/// The normal data port: routes accesses to the shared [`MemorySystem`]
/// on behalf of one core.
///
/// Reported cycles are *stall penalties beyond the pipelined L1 hit*: an
/// in-order 5-stage pipeline hides the L1 hit latency, so a hit costs no
/// extra cycles here and a miss costs the time beyond the hit.
#[derive(Debug)]
pub struct SocDataPort<'a> {
    mem: &'a mut MemorySystem,
    core: usize,
}

impl<'a> SocDataPort<'a> {
    /// Binds the port to `core`'s path through the memory system.
    pub fn new(mem: &'a mut MemorySystem, core: usize) -> Self {
        SocDataPort { mem, core }
    }

    fn penalty(&self, total: u64) -> u64 {
        total.saturating_sub(self.mem.latency().l1_hit)
    }
}

impl DataPort for SocDataPort<'_> {
    fn read(&mut self, addr: u64, size: u8) -> Result<(u64, u64), PortStop> {
        let (value, cycles) = self.mem.read(self.core, addr, size);
        Ok((value, self.penalty(cycles)))
    }

    fn write(&mut self, addr: u64, value: u64, size: u8) -> Result<u64, PortStop> {
        let cycles = self.mem.write(self.core, addr, value, size);
        Ok(self.penalty(cycles))
    }

    fn store_conditional(
        &mut self,
        addr: u64,
        value: u64,
        size: u8,
        resv_valid: bool,
    ) -> Result<(bool, u64), PortStop> {
        if resv_valid {
            let cycles = self.mem.write(self.core, addr, value, size);
            Ok((true, self.penalty(cycles)))
        } else {
            // Failed SC still probes the cache; charge a read-shaped trip.
            let (_, cycles) = self.mem.read(self.core, addr, size);
            Ok((false, self.penalty(cycles)))
        }
    }

    fn amo(
        &mut self,
        addr: u64,
        width: AmoWidth,
        op: AmoOp,
        src: u64,
    ) -> Result<(u64, u64), PortStop> {
        let (old, cycles) = self.mem.amo(self.core, addr, width.size(), |old| {
            amo_apply(op, width, old, src)
        });
        Ok((old, self.penalty(cycles)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexstep_mem::MemoryConfig;

    #[test]
    fn amo_apply_matrix() {
        use AmoOp::*;
        assert_eq!(amo_apply(Add, AmoWidth::D, 10, 5), 15);
        assert_eq!(amo_apply(Swap, AmoWidth::D, 10, 5), 5);
        assert_eq!(amo_apply(Xor, AmoWidth::D, 0b1100, 0b1010), 0b0110);
        assert_eq!(amo_apply(And, AmoWidth::D, 0b1100, 0b1010), 0b1000);
        assert_eq!(amo_apply(Or, AmoWidth::D, 0b1100, 0b1010), 0b1110);
        assert_eq!(
            amo_apply(Min, AmoWidth::D, (-5i64) as u64, 3),
            (-5i64) as u64
        );
        assert_eq!(amo_apply(Max, AmoWidth::D, (-5i64) as u64, 3), 3);
        assert_eq!(amo_apply(Minu, AmoWidth::D, (-5i64) as u64, 3), 3);
        assert_eq!(
            amo_apply(Maxu, AmoWidth::D, (-5i64) as u64, 3),
            (-5i64) as u64
        );
    }

    #[test]
    fn amo_apply_word_width_wraps() {
        assert_eq!(amo_apply(AmoOp::Add, AmoWidth::W, 0xFFFF_FFFF, 1), 0);
        assert_eq!(
            amo_apply(AmoOp::Min, AmoWidth::W, 0x8000_0000 /* i32::MIN */, 1),
            0x8000_0000
        );
    }

    #[test]
    fn soc_port_reads_and_writes() {
        let mut mem = MemorySystem::new(1, MemoryConfig::paper()).unwrap();
        let mut port = SocDataPort::new(&mut mem, 0);
        port.write(0x100, 0xAB, 1).unwrap();
        let (v, _) = port.read(0x100, 1).unwrap();
        assert_eq!(v, 0xAB);
    }

    #[test]
    fn sc_respects_reservation_flag() {
        let mut mem = MemorySystem::new(1, MemoryConfig::paper()).unwrap();
        let mut port = SocDataPort::new(&mut mem, 0);
        let (ok, _) = port.store_conditional(0x200, 7, 8, true).unwrap();
        assert!(ok);
        let (ok, _) = port.store_conditional(0x200, 9, 8, false).unwrap();
        assert!(!ok);
        assert_eq!(mem.phys().read_u64(0x200), 7);
    }

    #[test]
    fn amo_via_port_returns_old() {
        let mut mem = MemorySystem::new(1, MemoryConfig::paper()).unwrap();
        mem.phys_mut().write_u64(0x300, 100);
        let mut port = SocDataPort::new(&mut mem, 0);
        let (old, _) = port.amo(0x300, AmoWidth::D, AmoOp::Add, 11).unwrap();
        assert_eq!(old, 100);
        assert_eq!(mem.phys().read_u64(0x300), 111);
    }
}
