//! The multi-core SoC engine.
//!
//! [`Soc`] owns the cores and the shared memory system and steps cores one
//! instruction at a time under an event-driven interleave: the driver (the
//! OS layer in `flexstep-kernel`, or the FlexStep fabric in
//! `flexstep-core`) repeatedly asks for the earliest-ready running core and
//! steps it, choosing the data port — normal memory, or a checker-replay
//! port. Traps, custom FlexStep instructions, `wfi` and timer interrupts
//! are surfaced as [`StepKind`] values for the driver to handle, mirroring
//! how the paper's OS layer owns scheduling policy while the hardware owns
//! mechanism.

use crate::bpred::BpredConfig;
use crate::core::{Core, RunState};
use crate::exec::{execute, BranchOutcome, MemAccess, Stop};
use crate::hart::{CsrCounters, PrivMode, TrapCause};
use crate::model::{CoreModel, RetireInfo};
use crate::port::{DataPort, PortStop, SocDataPort};
use crate::ready::ReadyQueue;
pub use crate::ready::SchedMode;
use crate::timing::{Clock, ExecCosts};
use flexstep_isa::asm::Program;
use flexstep_isa::decode::decode;
use flexstep_isa::inst::{FlexOp, Inst};
use flexstep_isa::XReg;
use flexstep_mem::cache::CacheGeometryError;
use flexstep_mem::{MemoryConfig, MemorySystem};
use flexstep_soc::CoreModelKind;

/// SoC configuration.
#[derive(Debug, Clone, Copy)]
pub struct SocConfig {
    /// Number of cores.
    pub num_cores: usize,
    /// Memory hierarchy configuration.
    pub mem: MemoryConfig,
    /// Core clock.
    pub clock: Clock,
    /// Functional-unit costs.
    pub costs: ExecCosts,
    /// Branch-predictor configuration.
    pub bpred: BpredConfig,
}

impl SocConfig {
    /// The evaluated configuration of Tab. II with `num_cores` Rockets.
    pub fn paper(num_cores: usize) -> Self {
        SocConfig {
            num_cores,
            mem: MemoryConfig::paper(),
            clock: Clock::paper(),
            costs: ExecCosts::paper(),
            bpred: BpredConfig::paper(),
        }
    }
}

/// A retired instruction, as observed at the commit stage — the record the
/// FlexStep MAL and CPC consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// Program counter of the instruction.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Next program counter after retirement.
    pub next_pc: u64,
    /// Privilege mode the instruction executed in.
    pub prv: PrivMode,
    /// Data-memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// Control-flow resolution, if any (drives branch-outcome
    /// forwarding for out-of-order mains).
    pub branch: Option<BranchOutcome>,
    /// Total cycles charged (fetch + execute + hazards).
    pub cycles: u64,
}

/// Outcome of stepping a core once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepKind {
    /// An instruction retired normally.
    Retired(Retired),
    /// A synchronous trap: state unchanged, `pc` at the faulting
    /// instruction. The driver (kernel) handles it.
    Trap {
        /// Trap cause.
        cause: TrapCause,
        /// Trap value (`mtval` semantics).
        tval: u64,
        /// Faulting pc.
        pc: u64,
    },
    /// A latched timer interrupt is deliverable; nothing was executed.
    Interrupted {
        /// Interrupt cause.
        cause: TrapCause,
    },
    /// A FlexStep custom instruction reached execute; the platform
    /// supplies semantics via `flexstep-core` and must advance `pc`.
    Flex {
        /// The operation.
        op: FlexOp,
        /// Destination register.
        rd: XReg,
        /// Value of `rs1`.
        rs1_value: u64,
        /// Value of `rs2`.
        rs2_value: u64,
        /// The instruction's pc.
        pc: u64,
    },
    /// The core executed `wfi` and parked itself.
    Wfi,
    /// The data port aborted the instruction (checker detection path).
    Stopped(PortStop),
    /// The core was not in a runnable state.
    Idle,
}

/// Result of [`Soc::step_core`]: what happened and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepResult {
    /// What happened.
    pub kind: StepKind,
    /// Cycles consumed by this step.
    pub cycles: u64,
    /// Simulation time after the step.
    pub now: u64,
}

/// Slots in the decoded-instruction cache (power of two). Decoding is a
/// pure function of the fetched word, so memoising it is invisible to
/// both architectural results and timing.
const DECODE_SLOTS: usize = 4096;

/// Slots in the direct-mapped superblock cache (power of two), keyed by
/// start pc. A superblock is a straight-line run of decoded µops (no
/// control flow, atomics or system instructions) that
/// [`Soc::run_to_ecall`] executes without re-entering the step loop
/// between them; per-instruction timing is identical to stepping.
const BLOCK_SLOTS: usize = 512;

/// Longest straight-line run cached per superblock.
const BLOCK_MAX: usize = 32;

/// A cached straight-line run of decoded instructions starting at `pc`,
/// valid while the code-write epoch is unchanged.
struct Superblock {
    pc: u64,
    epoch: u64,
    insts: Vec<Inst>,
}

/// The simulated SoC.
pub struct Soc {
    cores: Vec<Core>,
    /// The shared memory system.
    pub mem: MemorySystem,
    clock: Clock,
    costs: ExecCosts,
    /// Predictor configuration, kept for [`Soc::set_core_model`].
    bpred_cfg: BpredConfig,
    now: u64,
    ready: ReadyQueue,
    sched_mode: SchedMode,
    /// Direct-mapped memo of `decode`, keyed by instruction word.
    decode_cache: Box<[Option<(u32, Inst)>]>,
    /// Mask selecting the I-cache line address of a pc (L0 fetch path).
    fetch_line_mask: u64,
    /// Whether the per-core 16-word line buffer applies (64-byte lines).
    line_buf_ok: bool,
    /// Bumped whenever executable text may have changed: on
    /// [`Soc::load_program`] and on any store into a loaded text range.
    /// Consumers caching decoded state (superblocks, the FlexStep
    /// segment-verdict memo) key their entries on this epoch.
    code_epoch: u64,
    /// `(base, end)` of every loaded program text image, line-aligned
    /// outward, for the store-into-code epoch check.
    text_ranges: Vec<(u64, u64)>,
    /// Whether [`Soc::run_to_ecall`] may dispatch superblocks.
    superblocks: bool,
    /// Direct-mapped superblock cache, keyed by start pc.
    block_cache: Box<[Option<Superblock>]>,
}

impl std::fmt::Debug for Soc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Soc")
            .field("num_cores", &self.cores.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl Soc {
    /// Builds an SoC.
    ///
    /// # Errors
    ///
    /// Returns [`CacheGeometryError`] if the memory configuration is
    /// invalid.
    pub fn new(config: SocConfig) -> Result<Self, CacheGeometryError> {
        let mem = MemorySystem::new(config.num_cores, config.mem)?;
        let cores: Vec<Core> = (0..config.num_cores)
            .map(|i| Core::new(i, config.bpred))
            .collect();
        Ok(Soc {
            ready: ReadyQueue::new(cores.len()),
            cores,
            mem,
            clock: config.clock,
            costs: config.costs,
            bpred_cfg: config.bpred,
            now: 0,
            sched_mode: SchedMode::default_for(config.num_cores),
            decode_cache: vec![None; DECODE_SLOTS].into_boxed_slice(),
            fetch_line_mask: !(config.mem.l1i.line_bytes as u64 - 1),
            line_buf_ok: config.mem.l1i.line_bytes == 64,
            code_epoch: 0,
            text_ranges: Vec::new(),
            superblocks: true,
            block_cache: (0..BLOCK_SLOTS).map(|_| None).collect(),
        })
    }

    /// Selects the ready-core scheduling algorithm (see [`SchedMode`]).
    /// Both modes pick identical cores; `LinearScan` exists for A/B
    /// benchmarking and determinism cross-checks.
    pub fn set_sched_mode(&mut self, mode: SchedMode) {
        self.sched_mode = mode;
    }

    /// The active scheduling algorithm.
    pub fn sched_mode(&self) -> SchedMode {
        self.sched_mode
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Current simulation time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The core clock (cycle ↔ µs conversions).
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Immutable core access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core(&self, id: usize) -> &Core {
        &self.cores[id]
    }

    /// Mutable core access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core_mut(&mut self, id: usize) -> &mut Core {
        // The caller may change `ready_at` or the run state through this
        // borrow; conservatively refresh the core's ready-queue entry.
        self.ready.mark_dirty(id);
        &mut self.cores[id]
    }

    /// Iterates over all cores.
    pub fn cores(&self) -> impl Iterator<Item = &Core> {
        self.cores.iter()
    }

    /// Swaps core `id`'s timing model for the one `kind` names. The
    /// architectural state is untouched; all microarchitectural timing
    /// state (predictor tables, hazards, issue window) starts cold.
    /// Call before dispatching work to the slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_core_model(&mut self, id: usize, kind: CoreModelKind) {
        self.cores[id].model = CoreModel::from_kind(kind, self.bpred_cfg);
        self.ready.mark_dirty(id);
    }

    /// Loads a program image into physical memory (no cache effects; call
    /// [`MemorySystem::flush_all`] when reloading over a live system).
    pub fn load_program(&mut self, program: &Program) {
        self.mem
            .phys_mut()
            .load_words(program.text_base, &program.text);
        self.mem.phys_mut().load(program.data_base, &program.data);
        // The image may overwrite text the L0 fetch buffers still hold.
        for core in &mut self.cores {
            core.last_fetch_line = u64::MAX;
        }
        // Record the text image (line-aligned outward) for the
        // store-into-code epoch check, and invalidate cached decode runs.
        let base = program.text_base & self.fetch_line_mask;
        let end = program.text_base + 4 * program.text.len() as u64;
        if let Some(r) = self.text_ranges.iter_mut().find(|r| r.0 == base) {
            r.1 = r.1.max(end);
        } else {
            self.text_ranges.push((base, end));
        }
        self.code_epoch += 1;
    }

    /// The code-write epoch: bumped on [`Soc::load_program`] and on any
    /// store into a loaded text range. Anything caching decoded
    /// instruction state (superblocks, the FlexStep segment-verdict
    /// memo) must key on this value. Direct writes through
    /// `mem.phys_mut()` bypass the epoch; callers patching code that way
    /// must reload via `load_program`.
    pub fn code_epoch(&self) -> u64 {
        self.code_epoch
    }

    /// Whether the I-cache line at `line` overlaps a loaded text image.
    #[inline]
    fn line_in_text(&self, line: u64) -> bool {
        let line_end = line | !self.fetch_line_mask;
        self.text_ranges
            .iter()
            .any(|&(base, end)| line_end >= base && line < end)
    }

    /// Enables or disables superblock dispatch in [`Soc::run_to_ecall`]
    /// (on by default). Timing and architectural results are identical
    /// either way; the toggle exists for A/B benchmarking and the
    /// equivalence tests.
    pub fn set_superblocks(&mut self, on: bool) {
        self.superblocks = on;
    }

    /// Charges one replayed-retire worth of bookkeeping to `core`
    /// without executing anything: advances the clock to the core's
    /// ready time, counts one (user-mode) retirement and schedules the
    /// core `cycles` later — exactly the timing bookkeeping
    /// [`Soc::step_core_with_port`] performs for a retired instruction.
    /// Used by the FlexStep engine to play back a memoized checker
    /// segment step-for-step.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn charge_replay_retire(&mut self, id: usize, cycles: u64) {
        self.charge_replay_retires(id, 1, cycles);
    }

    /// Batch form of [`Soc::charge_replay_retire`]: charges `count`
    /// retires totalling `total_cycles` in one call. The core's local
    /// timeline advances exactly as `count` individual charges would
    /// advance it; the global clock is only pulled up to the core's
    /// *current* ready time (what the first individual charge would do),
    /// never to the end of the batch — dispatch order is earliest-ready,
    /// so dragging `now` through the whole batch would warp other cores'
    /// timelines forward past their own ready times.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn charge_replay_retires(&mut self, id: usize, count: u64, total_cycles: u64) {
        self.ready.mark_dirty(id);
        self.now = self.now.max(self.cores[id].ready_at);
        let core = &mut self.cores[id];
        core.instret += count;
        core.user_instret += count;
        core.busy_cycles += total_cycles;
        core.ready_at = self.now + total_cycles;
    }

    /// The earliest-ready running core (ties to the lowest id), or `None`
    /// if no core is running — the O(num_cores) reference scan. Driver
    /// loops should prefer [`Soc::next_ready`].
    pub fn next_ready_core(&self) -> Option<usize> {
        self.cores
            .iter()
            .filter(|c| c.is_running())
            .min_by_key(|c| (c.ready_at, c.id))
            .map(|c| c.id)
    }

    /// The earliest-ready running core under the configured
    /// [`SchedMode`]. The event queue answers in O(log n) amortised and
    /// picks exactly the core the linear scan would.
    #[inline]
    pub fn next_ready(&mut self) -> Option<usize> {
        match self.sched_mode {
            SchedMode::EventQueue => self.ready.peek_min(&self.cores),
            SchedMode::LinearScan => self.next_ready_core(),
            SchedMode::Adaptive => {
                if self.cores.len() > SchedMode::SCAN_CROSSOVER {
                    self.ready.peek_min(&self.cores)
                } else {
                    self.next_ready_core()
                }
            }
        }
    }

    /// The earliest armed timer among parked cores, used by drivers to
    /// skip idle time.
    pub fn next_timer_event(&self) -> Option<u64> {
        self.cores
            .iter()
            .filter(|c| c.run_state == RunState::Parked)
            .filter_map(|c| c.timer_cmp)
            .min()
    }

    /// Advances idle time to `cycle` (monotonic; never moves backwards).
    pub fn advance_to(&mut self, cycle: u64) {
        self.now = self.now.max(cycle);
    }

    /// Advances the global clock to `id`'s ready time (never backwards).
    ///
    /// Drivers that dispatch strictly earliest-ready-first call this at
    /// dispatch so `now()` reads are a pure function of the dispatched
    /// core's timeline — independent of how many instructions earlier
    /// engine steps batched. For such drivers the advance is exactly
    /// what the core's next timed step would do anyway.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn touch_clock(&mut self, id: usize) {
        self.now = self.now.max(self.cores[id].ready_at);
    }

    /// Adds a stall to a core (models host-kernel execution time on that
    /// core, e.g. trap handling and context-switch cost).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn stall_core(&mut self, id: usize, cycles: u64) {
        let base = self.now.max(self.cores[id].ready_at);
        self.cores[id].ready_at = base + cycles;
        self.ready.mark_dirty(id);
    }

    /// Memoised instruction decode: a direct-mapped, word-keyed cache in
    /// front of the pure `decode` function. Misses (including words that
    /// do not decode) fall through to the real decoder.
    #[inline]
    fn decode_cached(&mut self, word: u32) -> Option<Inst> {
        let idx = (word ^ word.rotate_right(16)) as usize & (DECODE_SLOTS - 1);
        if let Some((w, inst)) = self.decode_cache[idx] {
            if w == word {
                return Some(inst);
            }
        }
        match decode(word) {
            Ok(inst) => {
                self.decode_cache[idx] = Some((word, inst));
                Some(inst)
            }
            Err(_) => None,
        }
    }

    /// Steps `core` one instruction through the normal memory port.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn step_core(&mut self, id: usize) -> StepResult {
        self.step_impl(id, None)
    }

    /// Steps `core` one instruction with a caller-supplied data port
    /// (checker replay). Instruction fetch still uses the core's I-cache
    /// path — FlexStep checkers fetch instructions normally and only halt
    /// *data* memory access (§II).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn step_core_with_port(&mut self, id: usize, port: &mut dyn DataPort) -> StepResult {
        self.step_impl(id, Some(port))
    }

    fn step_impl(&mut self, id: usize, custom: Option<&mut dyn DataPort>) -> StepResult {
        if !self.cores[id].is_running() {
            return StepResult {
                kind: StepKind::Idle,
                cycles: 0,
                now: self.now,
            };
        }
        // Advance the global clock to this core's ready time. The step
        // may move `ready_at` or park the core; refresh its queue entry.
        self.ready.mark_dirty(id);
        self.now = self.now.max(self.cores[id].ready_at);
        let now = self.now;

        // Latch and (maybe) deliver a timer interrupt before fetching.
        {
            let core = &mut self.cores[id];
            if let Some(cmp) = core.timer_cmp {
                if now >= cmp {
                    core.timer_pending = true;
                }
            }
            if core.timer_interrupt_deliverable() {
                return StepResult {
                    kind: StepKind::Interrupted {
                        cause: TrapCause::MachineTimer,
                    },
                    cycles: 0,
                    now,
                };
            }
        }

        // Fetch through the I-cache. A pipelined front end hides the L1
        // hit; only the penalty beyond the hit stalls the core.
        //
        // L0 fast path: a fetch from the line fetched immediately before
        // is a guaranteed L1 hit (nothing can evict it in between — the
        // I-cache is only mutated by this core's own fetches and is not
        // snooped), and skipping its LRU refresh cannot change any
        // replacement decision because no other line in the set was
        // touched since. Timing and replacement stay bit-exact.
        //
        // Replay fetches (checker data port supplied) never touch the
        // modelled I-cache: the checker re-runs code its main core
        // executed moments ago, so its I-side is treated as always-hit
        // (0 cycles beyond the pipelined hit). This makes per-segment
        // replay timing a pure function of (start checkpoint, log
        // stream, code bytes) — the property the segment-verdict memo
        // needs — and is why a checker's L1I stays cold (DESIGN.md §13).
        let replay = custom.is_some();
        let pc = self.cores[id].state.pc;
        let line = pc & self.fetch_line_mask;
        let (word, fetch_cycles) = if self.cores[id].last_fetch_line == line {
            let w = if self.line_buf_ok {
                self.cores[id].line_buf[(pc as usize >> 2) & 15]
            } else {
                self.mem.phys().read_u32(pc)
            };
            (w, 0)
        } else if replay {
            self.cores[id].last_fetch_line = line;
            if self.line_buf_ok {
                let phys = self.mem.phys();
                let core = &mut self.cores[id];
                for (i, slot) in core.line_buf.iter_mut().enumerate() {
                    *slot = phys.read_u32(line + 4 * i as u64);
                }
                (core.line_buf[(pc as usize >> 2) & 15], 0)
            } else {
                (self.mem.phys().read_u32(pc), 0)
            }
        } else {
            let (word, fetch_total) = self.mem.fetch(id, pc);
            self.cores[id].last_fetch_line = line;
            if self.line_buf_ok {
                let phys = self.mem.phys();
                let core = &mut self.cores[id];
                for (i, slot) in core.line_buf.iter_mut().enumerate() {
                    *slot = phys.read_u32(line + 4 * i as u64);
                }
            }
            (word, fetch_total.saturating_sub(self.mem.latency().l1_hit))
        };
        let inst = match self.decode_cached(word) {
            Some(inst) => inst,
            None => {
                return StepResult {
                    kind: StepKind::Trap {
                        cause: TrapCause::IllegalInstruction,
                        tval: u64::from(word),
                        pc,
                    },
                    cycles: fetch_cycles,
                    now,
                };
            }
        };

        // Execute through the selected data port.
        let prv = self.cores[id].state.prv;
        let counters = CsrCounters {
            cycle: now,
            time: now,
            instret: self.cores[id].instret,
        };
        let (outcome, custom) = match custom {
            None => {
                let mem = &mut self.mem;
                let core = &mut self.cores[id];
                let mut port = SocDataPort::new(mem, id);
                (
                    execute(
                        &mut core.state,
                        &inst,
                        &counters,
                        &self.costs,
                        &mut port,
                        &mut core.resv,
                    ),
                    None,
                )
            }
            Some(port) => {
                let core = &mut self.cores[id];
                let outcome = execute(
                    &mut core.state,
                    &inst,
                    &counters,
                    &self.costs,
                    &mut *port,
                    &mut core.resv,
                );
                (outcome, Some(port))
            }
        };

        let core = &mut self.cores[id];
        match outcome {
            Ok(exec) => {
                // Forwarded control flow: a checker replaying an
                // out-of-order main consumes the branch outcome the main
                // packed into the DBC stream instead of re-predicting it.
                // A forwarded outcome disagreeing with this retirement is
                // a detection — the port aborts the instruction exactly
                // like a data-log mismatch.
                let branch_hinted = match (custom, exec.branch) {
                    (Some(port), Some(_)) => match port.branch_outcome(exec.next_pc) {
                        Ok(hinted) => hinted,
                        Err(stop) => {
                            return StepResult {
                                kind: StepKind::Stopped(stop),
                                cycles: fetch_cycles,
                                now,
                            };
                        }
                    },
                    _ => false,
                };

                // Self-modifying code: a store into a line some L0 fetch
                // buffer holds invalidates it on *every* core (cross-core
                // code patching included), so the affected cores refetch
                // through the modelled I-cache — and live memory — on
                // their next step.
                let stored_line = exec.mem.as_ref().and_then(|m| {
                    (!matches!(
                        m.kind,
                        crate::exec::MemAccessKind::Load | crate::exec::MemAccessKind::Lr
                    ))
                    .then_some(m.addr & self.fetch_line_mask)
                });
                let mem_is_load = exec.mem.as_ref().is_some_and(|m| {
                    matches!(
                        m.kind,
                        crate::exec::MemAccessKind::Load | crate::exec::MemAccessKind::Lr
                    )
                });

                // Timing: the slot's core model owns every hazard and
                // speculation decision.
                let cycles = core.model.retire(
                    &RetireInfo {
                        pc,
                        inst: &inst,
                        fetch_cycles,
                        extra_cycles: exec.extra_cycles,
                        mem_is_load,
                        branch: exec.branch,
                        branch_hinted,
                    },
                    &self.costs,
                    now,
                );

                core.instret += 1;
                if prv == PrivMode::User {
                    core.user_instret += 1;
                }
                core.busy_cycles += cycles;
                core.ready_at = now + cycles;

                if let Some(line) = stored_line {
                    for c in &mut self.cores {
                        if c.last_fetch_line == line {
                            c.last_fetch_line = u64::MAX;
                        }
                    }
                    // A store into loaded text is (potential) code
                    // patching: invalidate every cached decode run.
                    if self.line_in_text(line) {
                        self.code_epoch += 1;
                    }
                }

                StepResult {
                    kind: StepKind::Retired(Retired {
                        pc,
                        inst,
                        next_pc: exec.next_pc,
                        prv,
                        mem: exec.mem,
                        branch: exec.branch,
                        cycles,
                    }),
                    cycles,
                    now,
                }
            }
            Err(Stop::Trap { cause, tval }) => StepResult {
                kind: StepKind::Trap { cause, tval, pc },
                cycles: fetch_cycles,
                now,
            },
            Err(Stop::Flex {
                op,
                rd,
                rs1_value,
                rs2_value,
            }) => StepResult {
                kind: StepKind::Flex {
                    op,
                    rd,
                    rs1_value,
                    rs2_value,
                    pc,
                },
                cycles: fetch_cycles,
                now,
            },
            Err(Stop::Wfi) => {
                core.park();
                core.state.pc = pc.wrapping_add(4);
                StepResult {
                    kind: StepKind::Wfi,
                    cycles: 1 + fetch_cycles,
                    now,
                }
            }
            Err(Stop::Port(stop)) => StepResult {
                kind: StepKind::Stopped(stop),
                cycles: fetch_cycles,
                now,
            },
        }
    }

    /// Completes a [`StepKind::Flex`] instruction on behalf of the
    /// platform: writes `rd` and advances `pc` past the instruction,
    /// charging one cycle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn complete_flex(&mut self, id: usize, rd: XReg, value: u64) {
        let core = &mut self.cores[id];
        core.state.set_x(rd, value);
        core.state.pc = core.state.pc.wrapping_add(4);
        core.instret += 1;
        core.busy_cycles += 1;
        core.ready_at = self.now.max(core.ready_at) + 1;
        self.ready.mark_dirty(id);
    }

    /// Whether `inst` may be folded into a superblock: straight-line,
    /// non-atomic, non-system work whose timing has no control-flow
    /// component and whose semantics read no live counters.
    fn block_eligible(inst: &Inst) -> bool {
        use flexstep_isa::inst::InstClass;
        matches!(
            inst.class(),
            InstClass::Alu | InstClass::MulDiv | InstClass::Load | InstClass::Store | InstClass::Fp
        )
    }

    /// Builds the superblock starting at `pc` into its slot. Metadata
    /// only: words are read straight from physical memory with no timing
    /// or cache effects — execution charges fetches per instruction,
    /// exactly like stepping.
    fn build_block(&mut self, pc: u64) -> usize {
        let slot = ((pc >> 2) as usize) & (BLOCK_SLOTS - 1);
        let mut insts = Vec::new();
        let mut at = pc;
        while insts.len() < BLOCK_MAX {
            let word = self.mem.phys().read_u32(at);
            match self.decode_cached(word) {
                Some(inst) if Self::block_eligible(&inst) => insts.push(inst),
                _ => break,
            }
            at += 4;
        }
        self.block_cache[slot] = Some(Superblock {
            pc,
            epoch: self.code_epoch,
            insts,
        });
        slot
    }

    /// Executes the superblock at `id`'s pc, if any, retiring at most
    /// `budget` instructions without re-entering the step loop between
    /// them. Returns the retire count (0 when the next instruction is
    /// not block-eligible). Per-instruction timing — fetch path, hazard
    /// interlock, functional-unit costs — is identical to
    /// [`Soc::step_core`]; a trap mid-block commits nothing and leaves
    /// the faulting instruction for the step loop to classify. Single
    /// driver only (used by [`Soc::run_to_ecall`]): it does not
    /// interleave with other cores.
    fn run_superblock(&mut self, id: usize, budget: u64) -> u64 {
        self.run_superblock_logged(id, budget, |_| {})
    }

    /// `Soc::run_superblock` with a per-retire observation sink: after
    /// each committed instruction `sink` receives the retiring memory
    /// access (if any), letting a platform log the block's accesses
    /// exactly as it would log individual [`StepKind::Retired`] steps.
    /// Returns 0 (and runs nothing) when superblock dispatch is
    /// disabled, the core is parked, or a timer is armed — callers fall
    /// back to single-stepping.
    pub fn run_superblock_logged<F>(&mut self, id: usize, budget: u64, mut sink: F) -> u64
    where
        F: FnMut(Option<&MemAccess>),
    {
        if !self.superblocks {
            return 0;
        }
        {
            let core = &self.cores[id];
            if !core.is_running() || core.timer_cmp.is_some() || core.timer_pending {
                return 0;
            }
        }
        let pc0 = self.cores[id].state.pc;
        let slot = ((pc0 >> 2) as usize) & (BLOCK_SLOTS - 1);
        let slot = match &self.block_cache[slot] {
            Some(b) if b.pc == pc0 && b.epoch == self.code_epoch => slot,
            _ => self.build_block(pc0),
        };
        let block = self.block_cache[slot].take().expect("slot just filled");
        self.ready.mark_dirty(id);
        let prv = self.cores[id].state.prv;
        let epoch0 = self.code_epoch;
        let mut retired = 0u64;
        // The block advances this core's *local* timeline; the global
        // clock is pulled up once, at dispatch (exactly what the first
        // single step would do). Dispatch order is earliest-ready, so
        // dragging `self.now` through the whole block would warp
        // earlier-ready cores' timelines forward past their own ready
        // times and make engine-step interleaving observable.
        self.now = self.now.max(self.cores[id].ready_at);
        let mut local_now = self.now;
        for inst in &block.insts {
            if retired >= budget {
                break;
            }
            // Clock advance, fetch, execute, timing: the step_impl
            // sequence minus dispatch (no timer is armed — guarded
            // above — so the latch step_impl performs is a no-op here).
            local_now = local_now.max(self.cores[id].ready_at);
            let now = local_now;
            let pc = self.cores[id].state.pc;
            let line = pc & self.fetch_line_mask;
            let fetch_cycles = if self.cores[id].last_fetch_line == line {
                0
            } else {
                let (_, fetch_total) = self.mem.fetch(id, pc);
                self.cores[id].last_fetch_line = line;
                if self.line_buf_ok {
                    let phys = self.mem.phys();
                    let core = &mut self.cores[id];
                    for (i, w) in core.line_buf.iter_mut().enumerate() {
                        *w = phys.read_u32(line + 4 * i as u64);
                    }
                }
                fetch_total.saturating_sub(self.mem.latency().l1_hit)
            };
            let counters = CsrCounters {
                cycle: now,
                time: now,
                instret: self.cores[id].instret,
            };
            let outcome = {
                let mem = &mut self.mem;
                let core = &mut self.cores[id];
                let mut port = SocDataPort::new(mem, id);
                execute(
                    &mut core.state,
                    inst,
                    &counters,
                    &self.costs,
                    &mut port,
                    &mut core.resv,
                )
            };
            let exec = match outcome {
                Ok(e) => e,
                // State is unmodified on a stop; the step loop
                // re-executes and classifies the instruction.
                Err(_) => break,
            };
            debug_assert!(exec.branch.is_none(), "control flow is never in-block");
            let core = &mut self.cores[id];
            let stored_line = exec.mem.as_ref().and_then(|m| {
                (!matches!(
                    m.kind,
                    crate::exec::MemAccessKind::Load | crate::exec::MemAccessKind::Lr
                ))
                .then_some(m.addr & self.fetch_line_mask)
            });
            let mem_is_load = exec.mem.as_ref().is_some_and(|m| {
                matches!(
                    m.kind,
                    crate::exec::MemAccessKind::Load | crate::exec::MemAccessKind::Lr
                )
            });
            let cycles = core.model.retire(
                &RetireInfo {
                    pc,
                    inst,
                    fetch_cycles,
                    extra_cycles: exec.extra_cycles,
                    mem_is_load,
                    branch: None,
                    branch_hinted: false,
                },
                &self.costs,
                now,
            );
            core.instret += 1;
            if prv == PrivMode::User {
                core.user_instret += 1;
            }
            core.busy_cycles += cycles;
            core.ready_at = now + cycles;
            retired += 1;
            sink(exec.mem.as_ref());
            if let Some(line) = stored_line {
                for c in &mut self.cores {
                    if c.last_fetch_line == line {
                        c.last_fetch_line = u64::MAX;
                    }
                }
                if self.line_in_text(line) {
                    self.code_epoch += 1;
                }
            }
            // A store into text stales this block's decoded run.
            if self.code_epoch != epoch0 {
                break;
            }
        }
        self.block_cache[slot] = Some(block);
        retired
    }

    /// Runs a single program on core 0 until it traps with an `ecall`,
    /// up to `max_instructions`. A convenience harness for tests and
    /// single-core experiments; returns the retire count. Straight-line
    /// runs dispatch as superblocks (see [`Soc::set_superblocks`]);
    /// timing is identical to pure stepping.
    ///
    /// # Panics
    ///
    /// Panics if the program faults with anything other than an `ecall`.
    pub fn run_to_ecall(&mut self, program: &Program, max_instructions: u64) -> u64 {
        self.load_program(program);
        let core = self.core_mut(0);
        core.state.pc = program.entry;
        core.state.prv = PrivMode::User;
        core.unpark();
        let mut retired = 0;
        while retired < max_instructions {
            if self.superblocks {
                retired += self.run_superblock(0, max_instructions - retired);
                if retired >= max_instructions {
                    break;
                }
            }
            match self.step_core(0).kind {
                StepKind::Retired(_) => retired += 1,
                StepKind::Trap {
                    cause: TrapCause::EcallFromU,
                    ..
                } => {
                    self.core_mut(0).park();
                    return retired;
                }
                other => panic!("unexpected stop while running {}: {other:?}", program.name),
            }
        }
        retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexstep_isa::asm::Assembler;
    use flexstep_isa::inst::IntOp;

    fn sum_program(n: i64) -> Program {
        let mut asm = Assembler::new("sum");
        asm.li(XReg::A0, 0);
        asm.li(XReg::A1, n);
        asm.label("loop").unwrap();
        asm.add(XReg::A0, XReg::A0, XReg::A1);
        asm.addi(XReg::A1, XReg::A1, -1);
        asm.bnez(XReg::A1, "loop");
        asm.ecall();
        asm.finish().unwrap()
    }

    #[test]
    fn runs_loop_to_completion() {
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        let p = sum_program(10);
        let retired = soc.run_to_ecall(&p, 1_000_000);
        assert_eq!(soc.core(0).state.x(XReg::A0), 55);
        // 2 li + 10 iterations of 3 instructions.
        assert_eq!(retired, 2 + 30);
        assert!(soc.now() > retired, "timing must include stalls");
    }

    #[test]
    fn user_instret_counts_only_user_mode() {
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        let p = sum_program(3);
        soc.run_to_ecall(&p, 1000);
        assert_eq!(soc.core(0).instret, soc.core(0).user_instret);
    }

    #[test]
    fn illegal_instruction_reports_trap() {
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        soc.mem.phys_mut().write_u32(0x1000, 0xFFFF_FFFF);
        let core = soc.core_mut(0);
        core.state.pc = 0x1000;
        core.unpark();
        let r = soc.step_core(0);
        assert!(matches!(
            r.kind,
            StepKind::Trap {
                cause: TrapCause::IllegalInstruction,
                ..
            }
        ));
    }

    #[test]
    fn idle_core_does_not_step() {
        let mut soc = Soc::new(SocConfig::paper(2)).unwrap();
        assert_eq!(soc.step_core(1).kind, StepKind::Idle);
    }

    #[test]
    fn timer_interrupt_preempts_before_execute() {
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        let p = sum_program(100_000);
        soc.load_program(&p);
        let core = soc.core_mut(0);
        core.state.pc = p.entry;
        core.state.prv = PrivMode::User;
        core.unpark();
        core.set_timer(500);
        let mut interrupted = false;
        for _ in 0..10_000 {
            match soc.step_core(0).kind {
                StepKind::Interrupted {
                    cause: TrapCause::MachineTimer,
                } => {
                    interrupted = true;
                    break;
                }
                StepKind::Retired(_) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(interrupted, "timer must fire");
        assert!(soc.now() >= 500);
    }

    #[test]
    fn next_ready_core_orders_by_time() {
        let mut soc = Soc::new(SocConfig::paper(2)).unwrap();
        soc.core_mut(0).unpark();
        soc.core_mut(1).unpark();
        soc.core_mut(0).ready_at = 100;
        soc.core_mut(1).ready_at = 50;
        assert_eq!(soc.next_ready_core(), Some(1));
        soc.core_mut(1).park();
        assert_eq!(soc.next_ready_core(), Some(0));
        soc.core_mut(0).park();
        assert_eq!(soc.next_ready_core(), None);
    }

    #[test]
    fn event_queue_matches_linear_scan() {
        let mut soc = Soc::new(SocConfig::paper(3)).unwrap();
        assert_eq!(soc.next_ready(), None);
        soc.core_mut(0).unpark();
        soc.core_mut(1).unpark();
        soc.core_mut(2).unpark();
        soc.core_mut(0).ready_at = 30;
        soc.core_mut(1).ready_at = 10;
        soc.core_mut(2).ready_at = 10;
        for _ in 0..4 {
            assert_eq!(soc.next_ready(), soc.next_ready_core());
            let id = soc.next_ready().unwrap();
            soc.stall_core(id, 25);
        }
        soc.core_mut(1).park();
        assert_eq!(soc.next_ready(), soc.next_ready_core());
        soc.set_sched_mode(SchedMode::LinearScan);
        assert_eq!(soc.next_ready(), soc.next_ready_core());
    }

    #[test]
    fn stall_core_adds_kernel_time() {
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        soc.stall_core(0, 300);
        assert_eq!(soc.core(0).ready_at, 300);
    }

    #[test]
    fn complete_flex_advances_pc_and_writes_rd() {
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        soc.core_mut(0).state.pc = 0x1000;
        soc.complete_flex(0, XReg::A0, 7);
        assert_eq!(soc.core(0).state.pc, 0x1004);
        assert_eq!(soc.core(0).state.x(XReg::A0), 7);
    }

    #[test]
    fn load_use_hazard_costs_extra_cycle() {
        // ld a0, 0(sp); add a1, a0, a0  -> interlock
        let mut asm = Assembler::new("hazard");
        asm.li(XReg::SP, 0x2000);
        asm.ld(XReg::A0, XReg::SP, 0);
        asm.push(Inst::Op {
            op: IntOp::Add,
            rd: XReg::A1,
            rs1: XReg::A0,
            rs2: XReg::A0,
        });
        asm.ecall();
        let p = asm.finish().unwrap();

        // Same shape, but the add does not consume the loaded value.
        let mut asm = Assembler::new("no_hazard");
        asm.li(XReg::SP, 0x2000);
        asm.ld(XReg::A0, XReg::SP, 0);
        asm.push(Inst::Op {
            op: IntOp::Add,
            rd: XReg::A1,
            rs1: XReg::T1,
            rs2: XReg::T1,
        });
        asm.ecall();
        let p2 = asm.finish().unwrap();

        let mut s1 = Soc::new(SocConfig::paper(1)).unwrap();
        s1.run_to_ecall(&p, 100);
        let mut s2 = Soc::new(SocConfig::paper(1)).unwrap();
        s2.run_to_ecall(&p2, 100);
        let d = s1.now() as i64 - s2.now() as i64;
        assert_eq!(d, 1, "dependent use directly after a load stalls one cycle");
    }

    #[test]
    fn superblocks_match_stepping_exactly() {
        // Straight-line ALU/load/store runs interleaved with branches; a
        // load-use interlock sits inside the block. Superblock dispatch
        // must be cycle- and state-exact against pure stepping.
        let mut asm = Assembler::new("blocks");
        asm.li(XReg::SP, 0x2000);
        asm.li(XReg::A1, 500);
        asm.label("loop").unwrap();
        for i in 0..6 {
            asm.addi(XReg::A0, XReg::A0, i);
        }
        asm.sd(XReg::SP, XReg::A0, 0);
        asm.ld(XReg::A2, XReg::SP, 0);
        asm.push(Inst::Op {
            op: IntOp::Add,
            rd: XReg::A3,
            rs1: XReg::A2,
            rs2: XReg::A2,
        });
        asm.addi(XReg::A1, XReg::A1, -1);
        asm.bnez(XReg::A1, "loop");
        asm.ecall();
        let p = asm.finish().unwrap();
        let run = |blocks: bool| {
            let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
            soc.set_superblocks(blocks);
            let retired = soc.run_to_ecall(&p, 1_000_000);
            (
                retired,
                soc.now(),
                soc.core(0).instret,
                soc.core(0).state.snapshot(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn code_epoch_bumps_on_store_into_text_not_data() {
        let mut asm = Assembler::new("data_store");
        asm.li(XReg::A0, 0x2000);
        asm.sd(XReg::A0, XReg::A1, 0);
        asm.ecall();
        let p = asm.finish().unwrap();
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        soc.run_to_ecall(&p, 100);
        assert_eq!(
            soc.code_epoch(),
            1,
            "only the program load bumps the epoch; data stores do not"
        );

        let mut asm = Assembler::new("text_store");
        asm.li(XReg::A0, 0x3000);
        asm.sd(XReg::A0, XReg::A1, 0);
        asm.ecall();
        let p2 = asm.finish().unwrap();
        // Aim the store into the loaded text image instead.
        let mut asm = Assembler::new("text_store2");
        asm.li(XReg::A0, p2.text_base as i64);
        asm.sd(XReg::A0, XReg::A1, 0);
        asm.ecall();
        let p3 = asm.finish().unwrap();
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        soc.run_to_ecall(&p3, 100);
        assert_eq!(
            soc.code_epoch(),
            2,
            "a store into text is code patching and bumps the epoch"
        );
    }

    #[test]
    fn charge_replay_retire_matches_step_bookkeeping() {
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        soc.core_mut(0).unpark();
        soc.core_mut(0).ready_at = 40;
        soc.charge_replay_retire(0, 3);
        assert_eq!(soc.now(), 40);
        assert_eq!(soc.core(0).ready_at, 43);
        assert_eq!(soc.core(0).instret, 1);
        assert_eq!(soc.core(0).user_instret, 1);
    }

    #[test]
    fn pipelined_l1_hits_reach_cpi_near_one() {
        // A hot ALU loop: after warm-up, fetch hits are hidden by the
        // pipeline, so per-instruction cost approaches 1 cycle plus the
        // (correctly predicted) loop branch.
        let mut asm = Assembler::new("alu_loop");
        asm.li(XReg::A1, 2000);
        asm.label("loop").unwrap();
        for _ in 0..14 {
            asm.addi(XReg::A0, XReg::A0, 1);
        }
        asm.addi(XReg::A1, XReg::A1, -1);
        asm.bnez(XReg::A1, "loop");
        asm.ecall();
        let p = asm.finish().unwrap();
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        let retired = soc.run_to_ecall(&p, 100_000);
        let cpi = soc.now() as f64 / retired as f64;
        assert!(cpi < 1.1, "hot-loop CPI should be near 1, got {cpi}");
    }
}
