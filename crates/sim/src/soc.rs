//! The multi-core SoC engine.
//!
//! [`Soc`] owns the cores and the shared memory system and steps cores one
//! instruction at a time under an event-driven interleave: the driver (the
//! OS layer in `flexstep-kernel`, or the FlexStep fabric in
//! `flexstep-core`) repeatedly asks for the earliest-ready running core and
//! steps it, choosing the data port — normal memory, or a checker-replay
//! port. Traps, custom FlexStep instructions, `wfi` and timer interrupts
//! are surfaced as [`StepKind`] values for the driver to handle, mirroring
//! how the paper's OS layer owns scheduling policy while the hardware owns
//! mechanism.

use crate::bpred::BpredConfig;
use crate::core::{Core, RunState};
use crate::exec::{execute, BranchOutcome, MemAccess, Stop};
use crate::hart::{CsrCounters, PrivMode, TrapCause};
use crate::port::{DataPort, PortStop, SocDataPort};
use crate::ready::ReadyQueue;
pub use crate::ready::SchedMode;
use crate::timing::{Clock, ExecCosts};
use flexstep_isa::asm::Program;
use flexstep_isa::decode::decode;
use flexstep_isa::inst::{FlexOp, Inst};
use flexstep_isa::XReg;
use flexstep_mem::cache::CacheGeometryError;
use flexstep_mem::{MemoryConfig, MemorySystem};

/// SoC configuration.
#[derive(Debug, Clone, Copy)]
pub struct SocConfig {
    /// Number of cores.
    pub num_cores: usize,
    /// Memory hierarchy configuration.
    pub mem: MemoryConfig,
    /// Core clock.
    pub clock: Clock,
    /// Functional-unit costs.
    pub costs: ExecCosts,
    /// Branch-predictor configuration.
    pub bpred: BpredConfig,
}

impl SocConfig {
    /// The evaluated configuration of Tab. II with `num_cores` Rockets.
    pub fn paper(num_cores: usize) -> Self {
        SocConfig {
            num_cores,
            mem: MemoryConfig::paper(),
            clock: Clock::paper(),
            costs: ExecCosts::paper(),
            bpred: BpredConfig::paper(),
        }
    }
}

/// A retired instruction, as observed at the commit stage — the record the
/// FlexStep MAL and CPC consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// Program counter of the instruction.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Next program counter after retirement.
    pub next_pc: u64,
    /// Privilege mode the instruction executed in.
    pub prv: PrivMode,
    /// Data-memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// Total cycles charged (fetch + execute + hazards).
    pub cycles: u64,
}

/// Outcome of stepping a core once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepKind {
    /// An instruction retired normally.
    Retired(Retired),
    /// A synchronous trap: state unchanged, `pc` at the faulting
    /// instruction. The driver (kernel) handles it.
    Trap {
        /// Trap cause.
        cause: TrapCause,
        /// Trap value (`mtval` semantics).
        tval: u64,
        /// Faulting pc.
        pc: u64,
    },
    /// A latched timer interrupt is deliverable; nothing was executed.
    Interrupted {
        /// Interrupt cause.
        cause: TrapCause,
    },
    /// A FlexStep custom instruction reached execute; the platform
    /// supplies semantics via `flexstep-core` and must advance `pc`.
    Flex {
        /// The operation.
        op: FlexOp,
        /// Destination register.
        rd: XReg,
        /// Value of `rs1`.
        rs1_value: u64,
        /// Value of `rs2`.
        rs2_value: u64,
        /// The instruction's pc.
        pc: u64,
    },
    /// The core executed `wfi` and parked itself.
    Wfi,
    /// The data port aborted the instruction (checker detection path).
    Stopped(PortStop),
    /// The core was not in a runnable state.
    Idle,
}

/// Result of [`Soc::step_core`]: what happened and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepResult {
    /// What happened.
    pub kind: StepKind,
    /// Cycles consumed by this step.
    pub cycles: u64,
    /// Simulation time after the step.
    pub now: u64,
}

/// Slots in the decoded-instruction cache (power of two). Decoding is a
/// pure function of the fetched word, so memoising it is invisible to
/// both architectural results and timing.
const DECODE_SLOTS: usize = 4096;

/// The simulated SoC.
pub struct Soc {
    cores: Vec<Core>,
    /// The shared memory system.
    pub mem: MemorySystem,
    clock: Clock,
    costs: ExecCosts,
    now: u64,
    ready: ReadyQueue,
    sched_mode: SchedMode,
    /// Direct-mapped memo of `decode`, keyed by instruction word.
    decode_cache: Box<[Option<(u32, Inst)>]>,
    /// Mask selecting the I-cache line address of a pc (L0 fetch path).
    fetch_line_mask: u64,
    /// Whether the per-core 16-word line buffer applies (64-byte lines).
    line_buf_ok: bool,
}

impl std::fmt::Debug for Soc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Soc")
            .field("num_cores", &self.cores.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl Soc {
    /// Builds an SoC.
    ///
    /// # Errors
    ///
    /// Returns [`CacheGeometryError`] if the memory configuration is
    /// invalid.
    pub fn new(config: SocConfig) -> Result<Self, CacheGeometryError> {
        let mem = MemorySystem::new(config.num_cores, config.mem)?;
        let cores: Vec<Core> = (0..config.num_cores)
            .map(|i| Core::new(i, config.bpred))
            .collect();
        Ok(Soc {
            ready: ReadyQueue::new(cores.len()),
            cores,
            mem,
            clock: config.clock,
            costs: config.costs,
            now: 0,
            sched_mode: SchedMode::default_for(config.num_cores),
            decode_cache: vec![None; DECODE_SLOTS].into_boxed_slice(),
            fetch_line_mask: !(config.mem.l1i.line_bytes as u64 - 1),
            line_buf_ok: config.mem.l1i.line_bytes == 64,
        })
    }

    /// Selects the ready-core scheduling algorithm (see [`SchedMode`]).
    /// Both modes pick identical cores; `LinearScan` exists for A/B
    /// benchmarking and determinism cross-checks.
    pub fn set_sched_mode(&mut self, mode: SchedMode) {
        self.sched_mode = mode;
    }

    /// The active scheduling algorithm.
    pub fn sched_mode(&self) -> SchedMode {
        self.sched_mode
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Current simulation time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The core clock (cycle ↔ µs conversions).
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Immutable core access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core(&self, id: usize) -> &Core {
        &self.cores[id]
    }

    /// Mutable core access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core_mut(&mut self, id: usize) -> &mut Core {
        // The caller may change `ready_at` or the run state through this
        // borrow; conservatively refresh the core's ready-queue entry.
        self.ready.mark_dirty(id);
        &mut self.cores[id]
    }

    /// Iterates over all cores.
    pub fn cores(&self) -> impl Iterator<Item = &Core> {
        self.cores.iter()
    }

    /// Loads a program image into physical memory (no cache effects; call
    /// [`MemorySystem::flush_all`] when reloading over a live system).
    pub fn load_program(&mut self, program: &Program) {
        self.mem
            .phys_mut()
            .load_words(program.text_base, &program.text);
        self.mem.phys_mut().load(program.data_base, &program.data);
        // The image may overwrite text the L0 fetch buffers still hold.
        for core in &mut self.cores {
            core.last_fetch_line = u64::MAX;
        }
    }

    /// The earliest-ready running core (ties to the lowest id), or `None`
    /// if no core is running — the O(num_cores) reference scan. Driver
    /// loops should prefer [`Soc::next_ready`].
    pub fn next_ready_core(&self) -> Option<usize> {
        self.cores
            .iter()
            .filter(|c| c.is_running())
            .min_by_key(|c| (c.ready_at, c.id))
            .map(|c| c.id)
    }

    /// The earliest-ready running core under the configured
    /// [`SchedMode`]. The event queue answers in O(log n) amortised and
    /// picks exactly the core the linear scan would.
    #[inline]
    pub fn next_ready(&mut self) -> Option<usize> {
        match self.sched_mode {
            SchedMode::EventQueue => self.ready.peek_min(&self.cores),
            SchedMode::LinearScan => self.next_ready_core(),
        }
    }

    /// The earliest armed timer among parked cores, used by drivers to
    /// skip idle time.
    pub fn next_timer_event(&self) -> Option<u64> {
        self.cores
            .iter()
            .filter(|c| c.run_state == RunState::Parked)
            .filter_map(|c| c.timer_cmp)
            .min()
    }

    /// Advances idle time to `cycle` (monotonic; never moves backwards).
    pub fn advance_to(&mut self, cycle: u64) {
        self.now = self.now.max(cycle);
    }

    /// Adds a stall to a core (models host-kernel execution time on that
    /// core, e.g. trap handling and context-switch cost).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn stall_core(&mut self, id: usize, cycles: u64) {
        let base = self.now.max(self.cores[id].ready_at);
        self.cores[id].ready_at = base + cycles;
        self.ready.mark_dirty(id);
    }

    /// Memoised instruction decode: a direct-mapped, word-keyed cache in
    /// front of the pure `decode` function. Misses (including words that
    /// do not decode) fall through to the real decoder.
    #[inline]
    fn decode_cached(&mut self, word: u32) -> Option<Inst> {
        let idx = (word ^ word.rotate_right(16)) as usize & (DECODE_SLOTS - 1);
        if let Some((w, inst)) = self.decode_cache[idx] {
            if w == word {
                return Some(inst);
            }
        }
        match decode(word) {
            Ok(inst) => {
                self.decode_cache[idx] = Some((word, inst));
                Some(inst)
            }
            Err(_) => None,
        }
    }

    /// Steps `core` one instruction through the normal memory port.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn step_core(&mut self, id: usize) -> StepResult {
        self.step_impl(id, None)
    }

    /// Steps `core` one instruction with a caller-supplied data port
    /// (checker replay). Instruction fetch still uses the core's I-cache
    /// path — FlexStep checkers fetch instructions normally and only halt
    /// *data* memory access (§II).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn step_core_with_port(&mut self, id: usize, port: &mut dyn DataPort) -> StepResult {
        self.step_impl(id, Some(port))
    }

    fn step_impl(&mut self, id: usize, custom: Option<&mut dyn DataPort>) -> StepResult {
        if !self.cores[id].is_running() {
            return StepResult {
                kind: StepKind::Idle,
                cycles: 0,
                now: self.now,
            };
        }
        // Advance the global clock to this core's ready time. The step
        // may move `ready_at` or park the core; refresh its queue entry.
        self.ready.mark_dirty(id);
        self.now = self.now.max(self.cores[id].ready_at);
        let now = self.now;

        // Latch and (maybe) deliver a timer interrupt before fetching.
        {
            let core = &mut self.cores[id];
            if let Some(cmp) = core.timer_cmp {
                if now >= cmp {
                    core.timer_pending = true;
                }
            }
            if core.timer_interrupt_deliverable() {
                return StepResult {
                    kind: StepKind::Interrupted {
                        cause: TrapCause::MachineTimer,
                    },
                    cycles: 0,
                    now,
                };
            }
        }

        // Fetch through the I-cache. A pipelined front end hides the L1
        // hit; only the penalty beyond the hit stalls the core.
        //
        // L0 fast path: a fetch from the line fetched immediately before
        // is a guaranteed L1 hit (nothing can evict it in between — the
        // I-cache is only mutated by this core's own fetches and is not
        // snooped), and skipping its LRU refresh cannot change any
        // replacement decision because no other line in the set was
        // touched since. Timing and replacement stay bit-exact.
        let pc = self.cores[id].state.pc;
        let line = pc & self.fetch_line_mask;
        let (word, fetch_cycles) = if self.cores[id].last_fetch_line == line {
            let w = if self.line_buf_ok {
                self.cores[id].line_buf[(pc as usize >> 2) & 15]
            } else {
                self.mem.phys().read_u32(pc)
            };
            (w, 0)
        } else {
            let (word, fetch_total) = self.mem.fetch(id, pc);
            self.cores[id].last_fetch_line = line;
            if self.line_buf_ok {
                let phys = self.mem.phys();
                let core = &mut self.cores[id];
                for (i, slot) in core.line_buf.iter_mut().enumerate() {
                    *slot = phys.read_u32(line + 4 * i as u64);
                }
            }
            (word, fetch_total.saturating_sub(self.mem.latency().l1_hit))
        };
        let inst = match self.decode_cached(word) {
            Some(inst) => inst,
            None => {
                return StepResult {
                    kind: StepKind::Trap {
                        cause: TrapCause::IllegalInstruction,
                        tval: u64::from(word),
                        pc,
                    },
                    cycles: fetch_cycles,
                    now,
                };
            }
        };

        // Execute through the selected data port.
        let prv = self.cores[id].state.prv;
        let counters = CsrCounters {
            cycle: now,
            time: now,
            instret: self.cores[id].instret,
        };
        let outcome = match custom {
            None => {
                let mem = &mut self.mem;
                let core = &mut self.cores[id];
                let mut port = SocDataPort::new(mem, id);
                execute(
                    &mut core.state,
                    &inst,
                    &counters,
                    &self.costs,
                    &mut port,
                    &mut core.resv,
                )
            }
            Some(port) => {
                let core = &mut self.cores[id];
                execute(
                    &mut core.state,
                    &inst,
                    &counters,
                    &self.costs,
                    port,
                    &mut core.resv,
                )
            }
        };

        let core = &mut self.cores[id];
        match outcome {
            Ok(exec) => {
                // Timing: base cycle + fetch + functional units + hazards.
                let mut cycles = 1 + fetch_cycles + exec.extra_cycles;

                // Load-use interlock against the previous instruction.
                if let Some(load_rd) = core.last_load_rd {
                    let (r1, r2) = inst.reads_xregs();
                    if r1 == Some(load_rd) || r2 == Some(load_rd) {
                        cycles += self.costs.load_use;
                    }
                }
                // Self-modifying code: a store into a line some L0 fetch
                // buffer holds invalidates it on *every* core (cross-core
                // code patching included), so the affected cores refetch
                // through the modelled I-cache — and live memory — on
                // their next step.
                let stored_line = exec.mem.as_ref().and_then(|m| {
                    (!matches!(
                        m.kind,
                        crate::exec::MemAccessKind::Load | crate::exec::MemAccessKind::Lr
                    ))
                    .then_some(m.addr & self.fetch_line_mask)
                });

                core.last_load_rd = match (&exec.mem, inst.writes_xreg()) {
                    (Some(m), Some(rd))
                        if matches!(
                            m.kind,
                            crate::exec::MemAccessKind::Load | crate::exec::MemAccessKind::Lr
                        ) =>
                    {
                        Some(rd)
                    }
                    _ => None,
                };

                // Branch-predictor timing.
                if let Some(b) = exec.branch {
                    let seq_pc = pc.wrapping_add(4);
                    match b {
                        BranchOutcome::Cond { taken, target } => {
                            cycles += core.bpred.resolve_branch(pc, taken, target);
                        }
                        BranchOutcome::Jal { target, link } => {
                            cycles += core.bpred.resolve_jal(pc, target);
                            if link {
                                core.bpred.push_return(seq_pc);
                            }
                        }
                        BranchOutcome::Jalr {
                            target,
                            link,
                            is_return,
                        } => {
                            cycles += core.bpred.resolve_jalr(pc, target, is_return);
                            if link {
                                core.bpred.push_return(seq_pc);
                            }
                        }
                    }
                }

                core.instret += 1;
                if prv == PrivMode::User {
                    core.user_instret += 1;
                }
                core.ready_at = now + cycles;

                if let Some(line) = stored_line {
                    for c in &mut self.cores {
                        if c.last_fetch_line == line {
                            c.last_fetch_line = u64::MAX;
                        }
                    }
                }

                StepResult {
                    kind: StepKind::Retired(Retired {
                        pc,
                        inst,
                        next_pc: exec.next_pc,
                        prv,
                        mem: exec.mem,
                        cycles,
                    }),
                    cycles,
                    now,
                }
            }
            Err(Stop::Trap { cause, tval }) => StepResult {
                kind: StepKind::Trap { cause, tval, pc },
                cycles: fetch_cycles,
                now,
            },
            Err(Stop::Flex {
                op,
                rd,
                rs1_value,
                rs2_value,
            }) => StepResult {
                kind: StepKind::Flex {
                    op,
                    rd,
                    rs1_value,
                    rs2_value,
                    pc,
                },
                cycles: fetch_cycles,
                now,
            },
            Err(Stop::Wfi) => {
                core.park();
                core.state.pc = pc.wrapping_add(4);
                StepResult {
                    kind: StepKind::Wfi,
                    cycles: 1 + fetch_cycles,
                    now,
                }
            }
            Err(Stop::Port(stop)) => StepResult {
                kind: StepKind::Stopped(stop),
                cycles: fetch_cycles,
                now,
            },
        }
    }

    /// Completes a [`StepKind::Flex`] instruction on behalf of the
    /// platform: writes `rd` and advances `pc` past the instruction,
    /// charging one cycle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn complete_flex(&mut self, id: usize, rd: XReg, value: u64) {
        let core = &mut self.cores[id];
        core.state.set_x(rd, value);
        core.state.pc = core.state.pc.wrapping_add(4);
        core.instret += 1;
        core.ready_at = self.now.max(core.ready_at) + 1;
        self.ready.mark_dirty(id);
    }

    /// Runs a single program on core 0 until it traps with an `ecall`,
    /// up to `max_instructions`. A convenience harness for tests and
    /// single-core experiments; returns the retire count.
    ///
    /// # Panics
    ///
    /// Panics if the program faults with anything other than an `ecall`.
    pub fn run_to_ecall(&mut self, program: &Program, max_instructions: u64) -> u64 {
        self.load_program(program);
        let core = self.core_mut(0);
        core.state.pc = program.entry;
        core.state.prv = PrivMode::User;
        core.unpark();
        let mut retired = 0;
        while retired < max_instructions {
            match self.step_core(0).kind {
                StepKind::Retired(_) => retired += 1,
                StepKind::Trap {
                    cause: TrapCause::EcallFromU,
                    ..
                } => {
                    self.core_mut(0).park();
                    return retired;
                }
                other => panic!("unexpected stop while running {}: {other:?}", program.name),
            }
        }
        retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexstep_isa::asm::Assembler;
    use flexstep_isa::inst::IntOp;

    fn sum_program(n: i64) -> Program {
        let mut asm = Assembler::new("sum");
        asm.li(XReg::A0, 0);
        asm.li(XReg::A1, n);
        asm.label("loop").unwrap();
        asm.add(XReg::A0, XReg::A0, XReg::A1);
        asm.addi(XReg::A1, XReg::A1, -1);
        asm.bnez(XReg::A1, "loop");
        asm.ecall();
        asm.finish().unwrap()
    }

    #[test]
    fn runs_loop_to_completion() {
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        let p = sum_program(10);
        let retired = soc.run_to_ecall(&p, 1_000_000);
        assert_eq!(soc.core(0).state.x(XReg::A0), 55);
        // 2 li + 10 iterations of 3 instructions.
        assert_eq!(retired, 2 + 30);
        assert!(soc.now() > retired, "timing must include stalls");
    }

    #[test]
    fn user_instret_counts_only_user_mode() {
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        let p = sum_program(3);
        soc.run_to_ecall(&p, 1000);
        assert_eq!(soc.core(0).instret, soc.core(0).user_instret);
    }

    #[test]
    fn illegal_instruction_reports_trap() {
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        soc.mem.phys_mut().write_u32(0x1000, 0xFFFF_FFFF);
        let core = soc.core_mut(0);
        core.state.pc = 0x1000;
        core.unpark();
        let r = soc.step_core(0);
        assert!(matches!(
            r.kind,
            StepKind::Trap {
                cause: TrapCause::IllegalInstruction,
                ..
            }
        ));
    }

    #[test]
    fn idle_core_does_not_step() {
        let mut soc = Soc::new(SocConfig::paper(2)).unwrap();
        assert_eq!(soc.step_core(1).kind, StepKind::Idle);
    }

    #[test]
    fn timer_interrupt_preempts_before_execute() {
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        let p = sum_program(100_000);
        soc.load_program(&p);
        let core = soc.core_mut(0);
        core.state.pc = p.entry;
        core.state.prv = PrivMode::User;
        core.unpark();
        core.set_timer(500);
        let mut interrupted = false;
        for _ in 0..10_000 {
            match soc.step_core(0).kind {
                StepKind::Interrupted {
                    cause: TrapCause::MachineTimer,
                } => {
                    interrupted = true;
                    break;
                }
                StepKind::Retired(_) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(interrupted, "timer must fire");
        assert!(soc.now() >= 500);
    }

    #[test]
    fn next_ready_core_orders_by_time() {
        let mut soc = Soc::new(SocConfig::paper(2)).unwrap();
        soc.core_mut(0).unpark();
        soc.core_mut(1).unpark();
        soc.core_mut(0).ready_at = 100;
        soc.core_mut(1).ready_at = 50;
        assert_eq!(soc.next_ready_core(), Some(1));
        soc.core_mut(1).park();
        assert_eq!(soc.next_ready_core(), Some(0));
        soc.core_mut(0).park();
        assert_eq!(soc.next_ready_core(), None);
    }

    #[test]
    fn event_queue_matches_linear_scan() {
        let mut soc = Soc::new(SocConfig::paper(3)).unwrap();
        assert_eq!(soc.next_ready(), None);
        soc.core_mut(0).unpark();
        soc.core_mut(1).unpark();
        soc.core_mut(2).unpark();
        soc.core_mut(0).ready_at = 30;
        soc.core_mut(1).ready_at = 10;
        soc.core_mut(2).ready_at = 10;
        for _ in 0..4 {
            assert_eq!(soc.next_ready(), soc.next_ready_core());
            let id = soc.next_ready().unwrap();
            soc.stall_core(id, 25);
        }
        soc.core_mut(1).park();
        assert_eq!(soc.next_ready(), soc.next_ready_core());
        soc.set_sched_mode(SchedMode::LinearScan);
        assert_eq!(soc.next_ready(), soc.next_ready_core());
    }

    #[test]
    fn stall_core_adds_kernel_time() {
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        soc.stall_core(0, 300);
        assert_eq!(soc.core(0).ready_at, 300);
    }

    #[test]
    fn complete_flex_advances_pc_and_writes_rd() {
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        soc.core_mut(0).state.pc = 0x1000;
        soc.complete_flex(0, XReg::A0, 7);
        assert_eq!(soc.core(0).state.pc, 0x1004);
        assert_eq!(soc.core(0).state.x(XReg::A0), 7);
    }

    #[test]
    fn load_use_hazard_costs_extra_cycle() {
        // ld a0, 0(sp); add a1, a0, a0  -> interlock
        let mut asm = Assembler::new("hazard");
        asm.li(XReg::SP, 0x2000);
        asm.ld(XReg::A0, XReg::SP, 0);
        asm.push(Inst::Op {
            op: IntOp::Add,
            rd: XReg::A1,
            rs1: XReg::A0,
            rs2: XReg::A0,
        });
        asm.ecall();
        let p = asm.finish().unwrap();

        // Same shape, but the add does not consume the loaded value.
        let mut asm = Assembler::new("no_hazard");
        asm.li(XReg::SP, 0x2000);
        asm.ld(XReg::A0, XReg::SP, 0);
        asm.push(Inst::Op {
            op: IntOp::Add,
            rd: XReg::A1,
            rs1: XReg::T1,
            rs2: XReg::T1,
        });
        asm.ecall();
        let p2 = asm.finish().unwrap();

        let mut s1 = Soc::new(SocConfig::paper(1)).unwrap();
        s1.run_to_ecall(&p, 100);
        let mut s2 = Soc::new(SocConfig::paper(1)).unwrap();
        s2.run_to_ecall(&p2, 100);
        let d = s1.now() as i64 - s2.now() as i64;
        assert_eq!(d, 1, "dependent use directly after a load stalls one cycle");
    }

    #[test]
    fn pipelined_l1_hits_reach_cpi_near_one() {
        // A hot ALU loop: after warm-up, fetch hits are hidden by the
        // pipeline, so per-instruction cost approaches 1 cycle plus the
        // (correctly predicted) loop branch.
        let mut asm = Assembler::new("alu_loop");
        asm.li(XReg::A1, 2000);
        asm.label("loop").unwrap();
        for _ in 0..14 {
            asm.addi(XReg::A0, XReg::A0, 1);
        }
        asm.addi(XReg::A1, XReg::A1, -1);
        asm.bnez(XReg::A1, "loop");
        asm.ecall();
        let p = asm.finish().unwrap();
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        let retired = soc.run_to_ecall(&p, 100_000);
        let cpi = soc.now() as f64 / retired as f64;
        assert!(cpi < 1.1, "hot-loop CPI should be near 1, got {cpi}");
    }
}
