//! Branch prediction timing model.
//!
//! Mirrors the evaluated Rocket front end (Tab. II): a 512-entry
//! bimodal BHT of 2-bit counters, a 28-entry BTB and a 6-entry return
//! address stack. Prediction accuracy only affects timing — mispredictions
//! charge a pipeline-flush penalty — never architectural results.

/// Branch predictor configuration (defaults per Tab. II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpredConfig {
    /// Number of 2-bit BHT counters.
    pub bht_entries: usize,
    /// Number of BTB entries.
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// Pipeline flush penalty on misprediction (front-end depth).
    pub mispredict_penalty: u64,
}

impl BpredConfig {
    /// The evaluated configuration: 512-entry BHT, 28-entry BTB, 6-entry
    /// RAS, 3-cycle redirect on the 5-stage pipeline.
    pub fn paper() -> Self {
        BpredConfig {
            bht_entries: 512,
            btb_entries: 28,
            ras_depth: 6,
            mispredict_penalty: 3,
        }
    }
}

impl Default for BpredConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BpredStats {
    /// Conditional branches observed.
    pub branches: u64,
    /// Conditional branches mispredicted (direction or target).
    pub branch_mispredicts: u64,
    /// Indirect jumps observed.
    pub indirect_jumps: u64,
    /// Indirect jumps mispredicted.
    pub indirect_mispredicts: u64,
}

impl BpredStats {
    /// Fraction of conditional branches mispredicted.
    pub fn branch_mpki_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    pc: u64,
    target: u64,
    lru: u64,
    valid: bool,
}

/// The branch predictor state of one core.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BpredConfig,
    bht: Vec<u8>,
    btb: Vec<BtbEntry>,
    ras: Vec<u64>,
    stats: BpredStats,
    tick: u64,
}

impl BranchPredictor {
    /// Builds a predictor.
    pub fn new(config: BpredConfig) -> Self {
        BranchPredictor {
            config,
            bht: vec![1; config.bht_entries.max(1)], // weakly not-taken
            btb: vec![
                BtbEntry {
                    pc: 0,
                    target: 0,
                    lru: 0,
                    valid: false
                };
                config.btb_entries.max(1)
            ],
            ras: Vec::with_capacity(config.ras_depth),
            stats: BpredStats::default(),
            tick: 0,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BpredStats {
        &self.stats
    }

    /// Clears the prediction tables (BHT to weakly-not-taken, BTB and
    /// RAS empty) without touching the accumulated statistics — the
    /// front-end flush a checker performs when it applies a segment
    /// start checkpoint, so per-segment replay timing does not depend on
    /// predictor state left over from earlier segments.
    pub fn reset_tables(&mut self) {
        self.bht.fill(1);
        for e in &mut self.btb {
            e.valid = false;
        }
        self.ras.clear();
        self.tick = 0;
    }

    fn bht_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.bht.len() - 1)
    }

    fn btb_lookup(&self, pc: u64) -> Option<u64> {
        self.btb
            .iter()
            .find(|e| e.valid && e.pc == pc)
            .map(|e| e.target)
    }

    fn btb_insert(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.btb.iter_mut().find(|e| e.valid && e.pc == pc) {
            e.target = target;
            e.lru = tick;
            return;
        }
        let victim = self
            .btb
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("btb is non-empty");
        *victim = BtbEntry {
            pc,
            target,
            lru: tick,
            valid: true,
        };
    }

    /// Resolves a conditional branch: predicts, updates state, and returns
    /// the misprediction penalty (0 on a correct prediction).
    pub fn resolve_branch(&mut self, pc: u64, taken: bool, target: u64) -> u64 {
        self.stats.branches += 1;
        let idx = self.bht_index(pc);
        let counter = self.bht[idx];
        let predicted_taken = counter >= 2;
        // Direction correct but target unknown to the BTB still redirects.
        let predicted_target = self.btb_lookup(pc);
        let correct = if taken {
            predicted_taken && predicted_target == Some(target)
        } else {
            !predicted_taken
        };

        // Update the 2-bit counter and BTB.
        self.bht[idx] = if taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        if taken {
            self.btb_insert(pc, target);
        }

        if correct {
            0
        } else {
            self.stats.branch_mispredicts += 1;
            self.config.mispredict_penalty
        }
    }

    /// Resolves a direct jump (`jal`): target is computable in decode, so
    /// only the first encounter redirects (BTB fill).
    pub fn resolve_jal(&mut self, pc: u64, target: u64) -> u64 {
        if self.btb_lookup(pc) == Some(target) {
            0
        } else {
            self.btb_insert(pc, target);
            1 // decode-stage redirect, cheaper than a full flush
        }
    }

    /// Pushes a return address (on `jal`/`jalr` that links).
    pub fn push_return(&mut self, return_addr: u64) {
        if self.ras.len() == self.config.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(return_addr);
    }

    /// Resolves an indirect jump (`jalr`). `is_return` marks the
    /// conventional `ret` shape (`jalr x0, 0(ra)`), predicted via the RAS.
    pub fn resolve_jalr(&mut self, pc: u64, target: u64, is_return: bool) -> u64 {
        self.stats.indirect_jumps += 1;
        let predicted = if is_return {
            self.ras.pop()
        } else {
            self.btb_lookup(pc)
        };
        if !is_return {
            self.btb_insert(pc, target);
        }
        if predicted == Some(target) {
            0
        } else {
            self.stats.indirect_mispredicts += 1;
            self.config.mispredict_penalty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(BpredConfig::paper())
    }

    #[test]
    fn repeated_taken_branch_learns() {
        let mut p = bp();
        let mut penalties = Vec::new();
        for _ in 0..5 {
            penalties.push(p.resolve_branch(0x1000, true, 0x2000));
        }
        // First encounters mispredict; once the counter saturates and the
        // BTB holds the target, predictions are free.
        assert!(penalties[0] > 0);
        assert_eq!(penalties[4], 0);
    }

    #[test]
    fn not_taken_branch_is_default_predicted() {
        let mut p = bp();
        assert_eq!(p.resolve_branch(0x1000, false, 0x2000), 0);
    }

    #[test]
    fn alternating_branch_keeps_mispredicting() {
        let mut p = bp();
        let mut mispredicts = 0;
        for i in 0..20 {
            if p.resolve_branch(0x1000, i % 2 == 0, 0x2000) > 0 {
                mispredicts += 1;
            }
        }
        assert!(
            mispredicts >= 8,
            "alternating pattern defeats bimodal: {mispredicts}"
        );
    }

    #[test]
    fn jal_redirects_once() {
        let mut p = bp();
        assert_eq!(p.resolve_jal(0x1000, 0x3000), 1);
        assert_eq!(p.resolve_jal(0x1000, 0x3000), 0);
    }

    #[test]
    fn ras_predicts_matched_call_return() {
        let mut p = bp();
        p.push_return(0x1004);
        assert_eq!(p.resolve_jalr(0x2000, 0x1004, true), 0);
        // Empty RAS now: next return mispredicts.
        assert!(p.resolve_jalr(0x2000, 0x1004, true) > 0);
    }

    #[test]
    fn ras_depth_bounded() {
        let mut p = BranchPredictor::new(BpredConfig {
            ras_depth: 2,
            ..BpredConfig::paper()
        });
        p.push_return(0x10);
        p.push_return(0x20);
        p.push_return(0x30); // evicts 0x10
        assert_eq!(p.resolve_jalr(0, 0x30, true), 0);
        assert_eq!(p.resolve_jalr(0, 0x20, true), 0);
        assert!(p.resolve_jalr(0, 0x10, true) > 0);
    }

    #[test]
    fn btb_capacity_evicts_lru() {
        let cfg = BpredConfig {
            btb_entries: 2,
            ..BpredConfig::paper()
        };
        let mut p = BranchPredictor::new(cfg);
        p.resolve_jal(0x100, 0x1000);
        p.resolve_jal(0x200, 0x2000);
        p.resolve_jal(0x300, 0x3000); // evicts 0x100
        assert_eq!(p.resolve_jal(0x200, 0x2000), 0);
        assert_eq!(
            p.resolve_jal(0x100, 0x1000),
            1,
            "evicted entry redirects again"
        );
    }

    #[test]
    fn indirect_jump_uses_btb() {
        let mut p = bp();
        assert!(p.resolve_jalr(0x500, 0x9000, false) > 0);
        assert_eq!(p.resolve_jalr(0x500, 0x9000, false), 0);
        // Target change mispredicts again.
        assert!(p.resolve_jalr(0x500, 0xA000, false) > 0);
        assert_eq!(p.stats().indirect_jumps, 3);
        assert_eq!(p.stats().indirect_mispredicts, 2);
    }
}
