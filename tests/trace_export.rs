//! Trace-exporter validation (ISSUE 5 acceptance tests).
//!
//! - **Golden file**: a deterministic 2-core run with one targeted
//!   fault must serialise to byte-identical Chrome `trace_event` JSON
//!   across runs *and* against the checked-in fixture
//!   (`tests/fixtures/trace_dual_core.trace.json`). Any intentional
//!   change to the trace format must update the fixture (regenerate
//!   with `BLESS_TRACE_FIXTURE=1 cargo test --test trace_export`).
//! - **Span well-formedness**: across a family of scenarios (clean,
//!   faulty, shared-checker, truncated), every opened span is closed
//!   (only `ph: "X"` complete events are emitted, with `dur >= 0`) and
//!   spans on one `tid` lane never overlap — the invariant that makes
//!   the `chrome://tracing` rendering truthful.

use flexstep::core::{
    FabricConfig, FaultPlan, FaultTarget, RecoveryPolicy, Scenario, Topology, VerifiedRun,
};
use flexstep::isa::asm::{Assembler, Program};
use flexstep::isa::XReg;

/// `trace_to` requires a destination path, but these tests read the
/// recorder back via [`VerifiedRun::trace`] and never call
/// `write_trace` — the path is never created.
fn unwritten() -> std::path::PathBuf {
    std::env::temp_dir().join("flexstep_trace_export_unwritten.json")
}

fn trace_json(run: &VerifiedRun) -> String {
    run.trace().expect("trace_to configured").to_chrome_json()
}

fn store_loop(n: i64) -> Program {
    let mut asm = Assembler::new("store_loop");
    asm.li(XReg::A0, 0);
    asm.li(XReg::A1, n);
    asm.li(XReg::A2, 0x2000_0000);
    asm.li(XReg::A4, 0);
    asm.label("loop").unwrap();
    asm.add(XReg::A0, XReg::A0, XReg::A1);
    asm.sd(XReg::A2, XReg::A0, 0);
    asm.ld(XReg::A3, XReg::A2, 0);
    asm.add(XReg::A4, XReg::A4, XReg::A3);
    asm.addi(XReg::A1, XReg::A1, -1);
    asm.bnez(XReg::A1, "loop");
    asm.ecall();
    asm.finish().unwrap()
}

/// A private-window job for multi-main scenarios.
fn job(slot: u64, iters: i64) -> Program {
    let text = 0x1000_0000 + slot * 0x10_0000;
    let data = 0x2000_0000 + slot * 0x10_0000;
    let mut asm = Assembler::with_bases(format!("job{slot}"), text, data);
    asm.li(XReg::A0, iters);
    asm.li(XReg::A1, data as i64);
    asm.label("l").unwrap();
    asm.sd(XReg::A1, XReg::A0, 0);
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "l");
    asm.ecall();
    asm.finish().unwrap()
}

/// The fixture scenario: 2 cores, one targeted data flip, run to
/// completion. Fully deterministic.
fn dual_core_trace_json() -> String {
    let mut run = Scenario::new(&store_loop(4000))
        .cores(2)
        .fabric(FabricConfig::paper())
        .fault_plan(FaultPlan::bit_flip_at(20_000, FaultTarget::EntryData).with_seed(3))
        .trace_to(unwritten())
        .build()
        .expect("valid scenario");
    let report = run.run_to_completion(50_000_000);
    assert!(report.completed);
    assert_eq!(report.injections.len(), 1, "the flip must land");
    trace_json(&run)
}

const FIXTURE_PATH: &str = "tests/fixtures/trace_dual_core.trace.json";

#[test]
fn dual_core_trace_is_byte_stable_and_matches_the_golden_file() {
    let first = dual_core_trace_json();
    let second = dual_core_trace_json();
    assert_eq!(first, second, "trace serialisation must be deterministic");

    if std::env::var_os("BLESS_TRACE_FIXTURE").is_some() {
        std::fs::write(FIXTURE_PATH, &first).expect("bless fixture");
        return;
    }
    let fixture = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(FIXTURE_PATH),
    )
    .expect("fixture checked in; regenerate with BLESS_TRACE_FIXTURE=1");
    assert_eq!(
        first, fixture,
        "trace JSON drifted from the golden file; if intentional, \
         regenerate with BLESS_TRACE_FIXTURE=1 cargo test --test trace_export"
    );
}

// ---------------------------------------------------------------------------
// Span well-formedness over a scenario family
// ---------------------------------------------------------------------------

/// Extracts the numeric value following `"key": ` on one event line.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Parses the one-event-per-line trace document into `ph: "X"` spans
/// `(tid, ts, dur)`, and counts instants.
fn parse_spans(json: &str) -> (Vec<(u64, f64, f64)>, usize) {
    let mut spans = Vec::new();
    let mut instants = 0;
    for line in json.lines() {
        if line.contains("\"ph\": \"X\"") {
            let tid = field_f64(line, "tid").expect("span has tid") as u64;
            let ts = field_f64(line, "ts").expect("span has ts");
            let dur = field_f64(line, "dur").expect("span has dur");
            spans.push((tid, ts, dur));
        } else if line.contains("\"ph\": \"i\"") {
            instants += 1;
        }
    }
    (spans, instants)
}

fn assert_wellformed(json: &str, what: &str) {
    let (spans, _instants) = parse_spans(json);
    assert!(!spans.is_empty(), "{what}: a run must produce spans");
    // Every span closed with a non-negative duration.
    for &(tid, ts, dur) in &spans {
        assert!(ts >= 0.0 && dur >= 0.0, "{what}: bad span on tid {tid}");
    }
    // Spans on one lane never overlap.
    let mut by_tid: std::collections::BTreeMap<u64, Vec<(f64, f64)>> = Default::default();
    for &(tid, ts, dur) in &spans {
        by_tid.entry(tid).or_default().push((ts, ts + dur));
    }
    for (tid, lane) in &mut by_tid {
        lane.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in lane.windows(2) {
            assert!(
                w[1].0 >= w[0].1 - 1e-9,
                "{what}: overlapping spans on tid {tid}: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn spans_are_closed_and_lanes_never_overlap_across_scenarios() {
    // Clean dual-core.
    {
        let mut run = Scenario::new(&store_loop(800))
            .cores(2)
            .trace_to(unwritten())
            .build()
            .unwrap();
        assert!(run.run_to_completion(10_000_000).completed);
        assert_wellformed(&trace_json(&run), "clean dual-core");
    }
    // Shared-checker SoC with random fault plans over several seeds.
    for seed in 0..4u64 {
        let plan = FaultPlan::none()
            .then_random_at(3_000)
            .on_channel(0)
            .then_random_at(9_000)
            .on_channel(2)
            .with_seed(seed);
        let mut run = Scenario::new(&job(0, 700))
            .program(&job(1, 500))
            .program(&job(2, 600))
            .cores(4)
            .topology(Topology::SharedChecker { checkers: 1 })
            .fault_plan(plan)
            .trace_to(unwritten())
            .build()
            .unwrap();
        assert!(run.run_to_completion(50_000_000).completed);
        assert_wellformed(&trace_json(&run), &format!("shared-checker seed {seed}"));
    }
    // Truncated run: stop mid-flight; open spans must still be closed
    // in the serialisation (flagged truncated).
    {
        let mut run = Scenario::new(&store_loop(5_000))
            .cores(2)
            .trace_to(unwritten())
            .build()
            .unwrap();
        assert!(run.run_until_cycle(8_000), "must still be live");
        let json = trace_json(&run);
        assert!(
            json.contains("\"truncated\": true"),
            "a mid-segment stop leaves an open span to truncate"
        );
        assert_wellformed(&json, "truncated dual-core");
    }
    // Rollback recovery: the detect -> verified-again window renders as
    // a "recovery" span, and a killed checker as an instant, without
    // breaking lane discipline.
    {
        let plan = FaultPlan::bit_flip_at(4_000, FaultTarget::EntryData)
            .with_seed(5)
            .then_kill_checker_at(9_000)
            .on_checker(1);
        let mut run = Scenario::new(&job(0, 4_000))
            .program(&job(1, 4_000))
            .cores(4)
            .topology(Topology::SharedChecker { checkers: 2 })
            .fault_plan(plan)
            .recovery(RecoveryPolicy::Rollback { max_retries: 3 })
            .trace_to(unwritten())
            .build()
            .unwrap();
        let report = run.run_to_completion(100_000_000);
        assert!(report.completed);
        let json = trace_json(&run);
        if !report.detections.is_empty() {
            assert!(
                json.contains("\"cat\": \"recovery\""),
                "a recovered detection must render a recovery span"
            );
        }
        assert_eq!(report.checkers_lost, 1);
        assert!(
            json.contains("\"killed\""),
            "the kill shot must render an instant"
        );
        assert_wellformed(&json, "rollback recovery");
    }
}

#[test]
fn bounded_trace_caps_the_event_count() {
    let mut run = Scenario::new(&store_loop(4_000))
        .cores(2)
        .trace_to_bounded(unwritten(), 8)
        .build()
        .unwrap();
    assert!(run.run_to_completion(50_000_000).completed);
    let t = run.trace().expect("trace_to configured");
    assert_eq!(t.len(), 8, "ring keeps exactly the capacity");
    assert!(t.dropped() > 0, "a long run must evict");
    assert_wellformed(&t.to_chrome_json(), "bounded dual-core");
}

#[test]
fn scenario_trace_to_writes_the_file_end_to_end() {
    let dir = std::env::temp_dir().join("flexstep_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dual.trace.json");
    let mut run = Scenario::new(&store_loop(600))
        .cores(2)
        .trace_to(&path)
        .build()
        .unwrap();
    assert!(run.run_to_completion(10_000_000).completed);
    let written = run.write_trace().unwrap().expect("tracing configured");
    assert_eq!(written, path);
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.starts_with("{\"traceEvents\": ["));
    assert_wellformed(&json, "trace_to end-to-end");
    std::fs::remove_file(&path).ok();
}
