//! `Scenario` front-door contract tests: every validation path returns a
//! typed [`ScenarioError`] (never a panic), and equivalent builder
//! topologies produce bit-identical runs (the guarantee the removed
//! `dual_core`/`triple_core` constructor shims used to carry).

use flexstep::core::{
    FabricConfig, FaultPlan, FaultTarget, PairingSchedule, ReliabilityMode, RunReport, Scenario,
    ScenarioError, Topology,
};
use flexstep::isa::asm::{Assembler, Program};
use flexstep::isa::XReg;

fn store_loop(n: i64) -> Program {
    let mut asm = Assembler::new("store_loop");
    asm.li(XReg::A0, 0);
    asm.li(XReg::A1, n);
    asm.li(XReg::A2, 0x2000_0000);
    asm.li(XReg::A4, 0);
    asm.label("loop").unwrap();
    asm.add(XReg::A0, XReg::A0, XReg::A1);
    asm.sd(XReg::A2, XReg::A0, 0);
    asm.ld(XReg::A3, XReg::A2, 0);
    asm.add(XReg::A4, XReg::A4, XReg::A3);
    asm.addi(XReg::A1, XReg::A1, -1);
    asm.bnez(XReg::A1, "loop");
    asm.ecall();
    asm.finish().unwrap()
}

// ---------------------------------------------------------------------------
// Validation errors
// ---------------------------------------------------------------------------

#[test]
fn zero_cores_is_an_error_not_a_panic() {
    let p = store_loop(10);
    let err = Scenario::new(&p).cores(0).build().unwrap_err();
    assert_eq!(err, ScenarioError::NoCores);
    assert!(err.to_string().contains("zero cores"));
}

#[test]
fn paired_lockstep_rejects_odd_core_counts() {
    let p = store_loop(10);
    let err = Scenario::new(&p).cores(3).build().unwrap_err();
    assert_eq!(err, ScenarioError::UnpairedCores { cores: 3 });
}

#[test]
fn checker_index_out_of_range_is_reported() {
    let p = store_loop(10);
    let err = Scenario::new(&p)
        .cores(2)
        .topology(Topology::Custom(vec![(0, vec![7])]))
        .build()
        .unwrap_err();
    assert_eq!(err, ScenarioError::CoreOutOfRange { core: 7, cores: 2 });

    let err = Scenario::new(&p)
        .cores(2)
        .topology(Topology::Custom(vec![(9, vec![1])]))
        .build()
        .unwrap_err();
    assert_eq!(err, ScenarioError::CoreOutOfRange { core: 9, cores: 2 });
}

#[test]
fn custom_map_rejects_self_checking_core() {
    let p = store_loop(10);
    let err = Scenario::new(&p)
        .cores(2)
        .topology(Topology::Custom(vec![(0, vec![0])]))
        .build()
        .unwrap_err();
    assert_eq!(err, ScenarioError::SelfCheck { core: 0 });
}

#[test]
fn fault_plan_on_nonexistent_channel_is_rejected() {
    let p = store_loop(10);
    let err = Scenario::new(&p)
        .cores(2)
        .fault_plan(FaultPlan::bit_flip_at(100, FaultTarget::EntryData).on_channel(3))
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ScenarioError::FaultChannelOutOfRange {
            channel: 3,
            mains: 1
        }
    );
}

#[test]
fn shared_checker_needs_a_sane_pool() {
    let p = store_loop(10);
    let err = Scenario::new(&p)
        .cores(4)
        .topology(Topology::SharedChecker { checkers: 0 })
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ScenarioError::BadCheckerCount {
            checkers: 0,
            cores: 4
        }
    );
    let err = Scenario::new(&p)
        .cores(4)
        .topology(Topology::SharedChecker { checkers: 4 })
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ScenarioError::BadCheckerCount {
            checkers: 4,
            cores: 4
        }
    );
}

#[test]
fn custom_map_misuse_is_typed() {
    let p = store_loop(10);
    // Duplicate main.
    let err = Scenario::new(&p)
        .program(&p)
        .cores(4)
        .topology(Topology::Custom(vec![(0, vec![1]), (0, vec![2])]))
        .build()
        .unwrap_err();
    assert_eq!(err, ScenarioError::DuplicateMain { main: 0 });
    // Empty checker list.
    let err = Scenario::new(&p)
        .cores(2)
        .topology(Topology::Custom(vec![(0, vec![])]))
        .build()
        .unwrap_err();
    assert_eq!(err, ScenarioError::NoCheckersFor { main: 0 });
    // Main also used as checker.
    let err = Scenario::new(&p)
        .program(&p)
        .cores(3)
        .topology(Topology::Custom(vec![(0, vec![1]), (1, vec![2])]))
        .build()
        .unwrap_err();
    assert_eq!(err, ScenarioError::RoleConflict { core: 1 });
    // A shared checker must be its mains' only checker.
    let err = Scenario::new(&p)
        .program(&p)
        .cores(4)
        .topology(Topology::Custom(vec![(0, vec![2, 3]), (1, vec![2])]))
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ScenarioError::SharedCheckerFanOut {
            main: 0,
            checker: 2
        }
    );
}

#[test]
fn program_count_must_match_main_count() {
    let p = store_loop(10);
    // 2 mains, 1 program.
    let err = Scenario::new(&p).cores(4).build().unwrap_err();
    assert_eq!(
        err,
        ScenarioError::MissingProgram {
            main_slot: 1,
            programs: 1
        }
    );
    // 1 main, 2 programs.
    let err = Scenario::new(&p).program(&p).cores(2).build().unwrap_err();
    assert_eq!(
        err,
        ScenarioError::ExtraPrograms {
            mains: 1,
            programs: 2
        }
    );
}

#[test]
fn reliability_mode_slot_must_exist() {
    let p = store_loop(10);
    // 1 main (core 0), slot 3 does not exist.
    let err = Scenario::new(&p)
        .cores(2)
        .reliability_mode(3, ReliabilityMode::FullLockstep)
        .build()
        .unwrap_err();
    assert_eq!(err, ScenarioError::ModeSlotOutOfRange { slot: 3, mains: 1 });
    assert!(err.to_string().contains("slot 3"));
}

#[test]
fn pairing_schedule_slot_must_exist() {
    let p = store_loop(10);
    let err = Scenario::new(&p)
        .cores(2)
        .pairing_schedule(PairingSchedule::new().release_at(1_000, 5))
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ScenarioError::PairingSlotOutOfRange { slot: 5, mains: 1 }
    );
}

#[test]
fn pairing_schedule_rejects_unchecked_slots() {
    let p = store_loop(10);
    // An Unchecked slot has no checker channel to acquire or release;
    // scheduling a transition on it is a build-time error, not a
    // silently dropped event.
    let err = Scenario::new(&p)
        .cores(2)
        .main_reliability_mode(ReliabilityMode::Unchecked)
        .pairing_schedule(PairingSchedule::new().window(0, 1_000, 2_000))
        .build()
        .unwrap_err();
    assert_eq!(err, ScenarioError::PairingUncheckedSlot { slot: 0 });
    assert!(err.to_string().contains("unchecked"));
}

// ---------------------------------------------------------------------------
// Topology equivalence (the guarantees the removed dual_core /
// triple_core constructor shims used to pin)
// ---------------------------------------------------------------------------

fn assert_bit_identical(a: &RunReport, b: &RunReport, what: &str) {
    // `RunReport` derives PartialEq over every field, including cycle
    // counts, per-main breakdowns and detections — equality IS
    // bit-for-bit reproduction.
    assert_eq!(a, b, "{what}: reports must be identical");
}

#[test]
fn paired_lockstep_is_bit_identical_to_its_custom_spelling() {
    // The old `VerifiedRun::dual_core` constructor was defined as
    // Custom(vec![(0, vec![1])]); PairedLockstep at two cores must
    // still resolve to exactly that platform.
    let p = store_loop(2_000);
    let mut paired = Scenario::new(&p)
        .cores(2)
        .topology(Topology::PairedLockstep)
        .fabric(FabricConfig::paper())
        .build()
        .unwrap();
    let rp = paired.run_to_completion(100_000_000);
    let mut custom = Scenario::new(&p)
        .cores(2)
        .topology(Topology::Custom(vec![(0, vec![1])]))
        .fabric(FabricConfig::paper())
        .build()
        .unwrap();
    let rc = custom.run_to_completion(100_000_000);
    assert!(rp.completed && rp.segments_checked >= 2);
    assert_bit_identical(&rp, &rc, "dual-core");
}

#[test]
fn triple_core_custom_topology_is_reproducible_bit_for_bit() {
    // The old `VerifiedRun::triple_core` constructor's topology,
    // rebuilt twice through the builder: same platform, same report.
    let p = store_loop(900);
    let run_once = || {
        let mut run = Scenario::new(&p)
            .cores(3)
            .topology(Topology::Custom(vec![(0, vec![1, 2])]))
            .fabric(FabricConfig::paper())
            .build()
            .unwrap();
        run.run_to_completion(100_000_000)
    };
    let ra = run_once();
    let rb = run_once();
    assert!(ra.completed);
    assert_bit_identical(&ra, &rb, "triple-core");
}

#[test]
fn scenario_builds_are_self_deterministic() {
    let p = store_loop(1_500);
    let run_once = || {
        Scenario::new(&p)
            .cores(2)
            .build()
            .unwrap()
            .run_to_completion(100_000_000)
    };
    assert_bit_identical(&run_once(), &run_once(), "repeat build");
}
