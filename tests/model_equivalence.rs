//! Core-model equivalence suite (ISSUE 9 acceptance tests).
//!
//! The `CoreModel` trait layer must be invisible for the in-order
//! pipeline: every scenario here pins `RunReport::to_json()` — and, for
//! the paired scenario, the Chrome trace JSON — byte-identical to the
//! goldens generated at the pre-refactor commit (before the
//! `InOrderModel` extraction). Regenerate deliberately with
//! `BLESS_MODEL_GOLDENS=1 cargo test --test model_equivalence` and
//! justify the diff in review; an unexplained diff is a timing or
//! accounting regression, not a formatting nit.
//!
//! Covered scenarios: paired lockstep, shared-checker pool with faults,
//! rollback recovery, and the memo on/off pair (which also re-pins the
//! PR 6 warp-free clock invariant — memo on/off must not merely both
//! complete, but produce the same bytes).

use flexstep::core::{
    FabricConfig, FaultPlan, RecoveryPolicy, ReliabilityMode, Scenario, Topology, VerifiedRun,
};
use flexstep::isa::asm::{Assembler, Program};
use flexstep::isa::XReg;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/goldens")
        .join(name)
}

/// Compares `actual` against the checked-in golden, or rewrites the
/// golden under `BLESS_MODEL_GOLDENS=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS_MODEL_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); bless to create", path.display()));
    assert_eq!(
        actual, expected,
        "{name} diverged from the pre-refactor golden \
         (BLESS_MODEL_GOLDENS=1 to regenerate deliberately)"
    );
}

/// A branchy store/load checksum kernel in a private window per slot —
/// enough control flow and memory traffic to exercise the predictor,
/// the load-use interlock and the DBC log datapath.
fn checksum_job(slot: u64, iters: i64) -> Program {
    let text = 0x1000_0000 + slot * 0x10_0000;
    let data = 0x2000_0000 + slot * 0x10_0000;
    let mut asm = Assembler::with_bases(format!("eq{slot}"), text, data);
    asm.la(XReg::A2, "buf");
    asm.data_label("buf").unwrap();
    asm.data_zeros(64);
    asm.li(XReg::A0, iters);
    asm.li(XReg::A4, 0);
    asm.label("l").unwrap();
    asm.sd(XReg::A2, XReg::A0, 0);
    asm.ld(XReg::A3, XReg::A2, 0);
    asm.add(XReg::A4, XReg::A4, XReg::A3);
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "l");
    asm.ecall();
    asm.finish().unwrap()
}

fn run_report(mut run: VerifiedRun) -> String {
    let report = run.run_to_completion(u64::MAX);
    assert!(report.completed, "equivalence run must complete");
    report.to_json()
}

#[test]
fn paired_lockstep_report_matches_golden() {
    let run = Scenario::new(&checksum_job(0, 700))
        .cores(2)
        .fabric(FabricConfig::paper())
        .build()
        .unwrap();
    assert_golden("paired.report.json", &run_report(run));
}

#[test]
fn paired_trace_matches_golden() {
    let tmp = std::env::temp_dir().join("flexstep_model_equivalence_unwritten.json");
    let mut run = Scenario::new(&checksum_job(0, 300))
        .cores(2)
        .fabric(FabricConfig::paper())
        .trace_to(tmp)
        .build()
        .unwrap();
    let report = run.run_to_completion(u64::MAX);
    assert!(report.completed);
    let trace = run.trace().expect("trace configured").to_chrome_json();
    assert_golden("paired.trace.json", &trace);
}

#[test]
fn shared_checker_faulty_report_matches_golden() {
    let programs: Vec<Program> = (0..6).map(|i| checksum_job(i, 500)).collect();
    let mut plan = FaultPlan::none().with_seed(0x9e37);
    for k in 0..3usize {
        plan = plan.then_random_at(3_000 + 4_000 * k as u64).on_channel(k);
    }
    let mut scenario = Scenario::new(&programs[0])
        .cores(8)
        .topology(Topology::SharedChecker { checkers: 2 })
        .fabric(FabricConfig::paper())
        .fault_plan(plan);
    for p in &programs[1..] {
        scenario = scenario.program(p);
    }
    assert_golden(
        "shared_faulty.report.json",
        &run_report(scenario.build().unwrap()),
    );
}

#[test]
fn rollback_recovery_report_matches_golden() {
    let run = Scenario::new(&checksum_job(0, 900))
        .cores(2)
        .fabric(FabricConfig::paper())
        .fault_plan(FaultPlan::none().with_seed(7).then_random_at(5_000))
        .recovery(RecoveryPolicy::Rollback { max_retries: 3 })
        .build()
        .unwrap();
    assert_golden("recovery.report.json", &run_report(run));
}

// ---------------------------------------------------------------------------
// Reliability-mode equivalence (ISSUE 10): `SegmentCheck` is the
// pre-mode behavior, so *explicitly* requesting it — via the all-mains
// or the per-slot builder — must reproduce the same goldens byte for
// byte, reports and traces alike. A diff here means the mode layer
// perturbed the default path.
// ---------------------------------------------------------------------------

#[test]
fn explicit_segment_check_report_matches_paired_golden() {
    let run = Scenario::new(&checksum_job(0, 700))
        .cores(2)
        .fabric(FabricConfig::paper())
        .main_reliability_mode(ReliabilityMode::SegmentCheck)
        .build()
        .unwrap();
    assert_golden("paired.report.json", &run_report(run));
}

#[test]
fn explicit_segment_check_trace_matches_paired_golden() {
    let tmp = std::env::temp_dir().join("flexstep_mode_equivalence_unwritten.json");
    let mut run = Scenario::new(&checksum_job(0, 300))
        .cores(2)
        .fabric(FabricConfig::paper())
        .main_reliability_mode(ReliabilityMode::SegmentCheck)
        .trace_to(tmp)
        .build()
        .unwrap();
    let report = run.run_to_completion(u64::MAX);
    assert!(report.completed);
    let trace = run.trace().expect("trace configured").to_chrome_json();
    assert_golden("paired.trace.json", &trace);
}

#[test]
fn per_slot_segment_check_report_matches_shared_faulty_golden() {
    let programs: Vec<Program> = (0..6).map(|i| checksum_job(i, 500)).collect();
    let mut plan = FaultPlan::none().with_seed(0x9e37);
    for k in 0..3usize {
        plan = plan.then_random_at(3_000 + 4_000 * k as u64).on_channel(k);
    }
    let mut scenario = Scenario::new(&programs[0])
        .cores(8)
        .topology(Topology::SharedChecker { checkers: 2 })
        .fabric(FabricConfig::paper())
        .fault_plan(plan);
    for p in &programs[1..] {
        scenario = scenario.program(p);
    }
    for slot in 0..6 {
        scenario = scenario.reliability_mode(slot, ReliabilityMode::SegmentCheck);
    }
    assert_golden(
        "shared_faulty.report.json",
        &run_report(scenario.build().unwrap()),
    );
}

#[test]
fn explicit_segment_check_report_matches_recovery_golden() {
    let run = Scenario::new(&checksum_job(0, 900))
        .cores(2)
        .fabric(FabricConfig::paper())
        .fault_plan(FaultPlan::none().with_seed(7).then_random_at(5_000))
        .recovery(RecoveryPolicy::Rollback { max_retries: 3 })
        .main_reliability_mode(ReliabilityMode::SegmentCheck)
        .build()
        .unwrap();
    assert_golden("recovery.report.json", &run_report(run));
}

#[test]
fn explicit_segment_check_matches_memo_goldens() {
    let program = checksum_job(0, 600);
    for (memo, golden) in [
        (false, "memo_off.report.json"),
        (true, "memo_on.report.json"),
    ] {
        let run = Scenario::new(&program)
            .cores(2)
            .fabric(FabricConfig::paper())
            .memo(memo)
            .main_reliability_mode(ReliabilityMode::SegmentCheck)
            .build()
            .unwrap();
        assert_golden(golden, &run_report(run));
    }
}

#[test]
fn memo_on_and_off_match_goldens_and_each_other() {
    let program = checksum_job(0, 600);
    let reports: Vec<String> = [false, true]
        .iter()
        .map(|&memo| {
            let run = Scenario::new(&program)
                .cores(2)
                .fabric(FabricConfig::paper())
                .memo(memo)
                .build()
                .unwrap();
            run_report(run)
        })
        .collect();
    // The warp-free clock invariant: memoized playback must be
    // byte-identical to full replay, not just "also complete".
    assert_eq!(reports[0], reports[1], "memo on/off must not diverge");
    assert_golden("memo_off.report.json", &reports[0]);
    assert_golden("memo_on.report.json", &reports[1]);
}
