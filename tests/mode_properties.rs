//! Reliability-mode properties (ISSUE 10 satellite).
//!
//! The mode layer must keep the fault-attribution chain ordered no
//! matter how slots mix modes, how checkers come and go mid-run, or
//! where shots land:
//!
//! - `detected <= landed <= armed`, and every armed shot either lands
//!   or expires, under random mode assignments × acquire/release
//!   schedules × fault plans;
//! - a shot that expires while its slot is `Unchecked` or released
//!   raises the typed `ShotInUncheckedWindow` warning — never expires
//!   silently;
//! - on identical seeds, mean detection latency is monotone in
//!   strictness: `FullLockstep` <= `SegmentCheck` <= `CheckpointOnly`.

use flexstep::core::{
    FabricConfig, FaultPlan, FaultTarget, PairingSchedule, ReliabilityMode, RunWarning, Scenario,
    Topology, RELIABILITY_MODES,
};
use flexstep::isa::asm::{Assembler, Program};
use flexstep::isa::XReg;
use proptest::prelude::*;

/// A branchy store/load checksum kernel in a private window per slot.
/// Run against a 150-instruction segment limit, a few hundred
/// iterations cross dozens of segment boundaries — enough for deferred
/// releases to land and for the modes to differ.
fn checksum_job(slot: u64, iters: i64) -> Program {
    let text = 0x1000_0000 + slot * 0x10_0000;
    let data = 0x2000_0000 + slot * 0x10_0000;
    let mut asm = Assembler::with_bases(format!("mp{slot}"), text, data);
    asm.la(XReg::A2, "buf");
    asm.data_label("buf").unwrap();
    asm.data_zeros(64);
    asm.li(XReg::A0, iters);
    asm.li(XReg::A4, 0);
    asm.label("l").unwrap();
    asm.sd(XReg::A2, XReg::A0, 0);
    asm.ld(XReg::A3, XReg::A2, 0);
    asm.add(XReg::A4, XReg::A4, XReg::A3);
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "l");
    asm.ecall();
    asm.finish().unwrap()
}

fn small_segments() -> FabricConfig {
    FabricConfig {
        segment_limit: 150,
        ..FabricConfig::paper()
    }
}

fn unchecked_warnings(warnings: &[RunWarning]) -> usize {
    warnings
        .iter()
        .filter(|w| matches!(w, RunWarning::ShotInUncheckedWindow { .. }))
        .count()
}

fn mode_strategy() -> impl Strategy<Value = ReliabilityMode> {
    (0..RELIABILITY_MODES.len()).prop_map(|i| RELIABILITY_MODES[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random per-slot modes × random release/re-acquire windows ×
    /// random fault plans: the run completes and the attribution chain
    /// stays ordered. Warnings only ever annotate expired shots.
    #[test]
    fn attribution_orders_under_random_modes_and_schedules(
        modes in proptest::collection::vec(mode_strategy(), 2),
        shared in any::<bool>(),
        window_on in proptest::collection::vec(any::<bool>(), 2),
        release_at in 2_000u64..8_000,
        window_len in 1_000u64..8_000,
        shots in proptest::collection::vec((1_000u64..20_000, 0usize..2, any::<bool>()), 1..4),
        seed in 0u64..1_000,
    ) {
        let p0 = checksum_job(0, 600);
        let p1 = checksum_job(1, 600);
        let mut scenario = if shared {
            Scenario::new(&p0)
                .program(&p1)
                .cores(3)
                .topology(Topology::SharedChecker { checkers: 1 })
        } else {
            Scenario::new(&p0).program(&p1).cores(4)
        };
        scenario = scenario.fabric(small_segments());
        for (slot, mode) in modes.iter().enumerate() {
            scenario = scenario.reliability_mode(slot, *mode);
        }
        // Windows only on checked slots: scheduling a pairing event on
        // an Unchecked slot is a build-time error by design.
        let mut schedule = PairingSchedule::new();
        let mut scheduled = false;
        for slot in 0..2 {
            if window_on[slot] && modes[slot].is_checked() {
                schedule = schedule.window(slot, release_at, release_at + window_len);
                scheduled = true;
            }
        }
        if scheduled {
            scenario = scenario.pairing_schedule(schedule);
        }
        let mut plan = FaultPlan::none().with_seed(seed);
        for &(at, channel, targeted) in &shots {
            plan = if targeted {
                plan.then_bit_flip_at(at, FaultTarget::EntryData).on_channel(channel)
            } else {
                plan.then_random_at(at).on_channel(channel)
            };
        }
        let mut run = scenario.fault_plan(plan).build().expect("setup");
        let report = run.run_to_completion(100_000_000);

        prop_assert!(report.completed, "mode run must finish");
        let armed = report.shots_armed as usize;
        let landed = report.injections.len();
        let expired = report.shots_expired as usize;
        let detected = report.matched_detections().len();
        prop_assert_eq!(armed, shots.len());
        prop_assert_eq!(landed + expired, armed, "every armed shot lands or expires");
        prop_assert!(detected <= landed, "attribution: {detected} detected of {landed} landed");
        prop_assert!(
            unchecked_warnings(&report.warnings) <= expired,
            "warnings annotate expired shots only"
        );
        // Mode accounting is live whenever any slot leaves SegmentCheck
        // or a schedule is installed; its totals cover every main slot.
        if !report.mode_stats.is_empty() {
            prop_assert_eq!(report.mode_stats.len(), 2);
            for (slot, stat) in report.mode_stats.iter().enumerate() {
                prop_assert_eq!(stat.mode, modes[slot]);
            }
        }
    }

    /// Every shot aimed at an `Unchecked` slot expires with the typed
    /// warning — never silently, and never as a detection.
    #[test]
    fn unchecked_shots_always_expire_with_warnings(
        shots in proptest::collection::vec((500u64..30_000, any::<bool>()), 1..5),
        seed in 0u64..1_000,
        iters in 200i64..800,
    ) {
        let mut plan = FaultPlan::none().with_seed(seed);
        for &(at, targeted) in &shots {
            plan = if targeted {
                plan.then_bit_flip_at(at, FaultTarget::EntryData)
            } else {
                plan.then_random_at(at)
            };
        }
        let mut run = Scenario::new(&checksum_job(0, iters))
            .cores(2)
            .fabric(small_segments())
            .main_reliability_mode(ReliabilityMode::Unchecked)
            .fault_plan(plan)
            .build()
            .expect("setup");
        let report = run.run_to_completion(100_000_000);
        prop_assert!(report.completed);
        prop_assert_eq!(report.injections.len(), 0, "nothing flows on an unchecked stream");
        prop_assert!(report.detections.is_empty());
        prop_assert_eq!(report.shots_expired, report.shots_armed);
        prop_assert_eq!(
            unchecked_warnings(&report.warnings) as u64,
            report.shots_armed,
            "every unchecked expiry must warn"
        );
    }

    /// A shot that expires while its slot sits released (the checker
    /// was handed back and never re-acquired) warns just like a shot on
    /// an `Unchecked` slot.
    #[test]
    fn released_window_expiries_warn(
        release_at in 400u64..1_200,
        iters in 300i64..900,
        seed in 0u64..1_000,
    ) {
        // The shot can never fire before the run drains (beyond any
        // horizon), so it must expire — while slot 0 sits released.
        let plan = FaultPlan::none()
            .with_seed(seed)
            .then_bit_flip_at(u64::MAX / 2, FaultTarget::EntryData);
        let mut run = Scenario::new(&checksum_job(0, iters))
            .cores(2)
            .fabric(small_segments())
            .pairing_schedule(PairingSchedule::new().release_at(release_at, 0))
            .fault_plan(plan)
            .build()
            .expect("setup");
        let report = run.run_to_completion(100_000_000);
        prop_assert!(report.completed);
        prop_assert_eq!(report.shots_expired, 1);
        prop_assert_eq!(report.mode_stats[0].releases, 1);
        prop_assert_eq!(
            unchecked_warnings(&report.warnings),
            1,
            "a released-window expiry must warn, not pass silently"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On identical seeds and shot cycles, mean detection latency
    /// orders by strictness: a lockstep main held at every checkpoint
    /// beats segment-granular verdicts, which beat coarse
    /// checkpoint-only segments. The comparison is over a small
    /// campaign, not a single shot — which in-flight FIFO entry a shot
    /// corrupts is drawn by the fault driver, so individual latencies
    /// can cross even though the distributions order cleanly.
    #[test]
    fn detection_latency_is_monotone_in_strictness(
        ats in proptest::collection::vec(1_000u64..5_000, 6),
        seed in 0u64..1_000,
    ) {
        // ~6 000 user instructions: every shot cycle below lands well
        // inside even the fastest (CheckpointOnly) run's horizon.
        let program = checksum_job(0, 1_200);
        let mut means = Vec::new();
        for mode in [
            ReliabilityMode::FullLockstep,
            ReliabilityMode::SegmentCheck,
            ReliabilityMode::CheckpointOnly,
        ] {
            let mut total = 0u64;
            for &at in &ats {
                let plan = FaultPlan::none()
                    .with_seed(seed)
                    .then_bit_flip_at(at, FaultTarget::EntryData);
                let mut run = Scenario::new(&program)
                    .cores(2)
                    .fabric(small_segments())
                    .main_reliability_mode(mode)
                    .fault_plan(plan)
                    .build()
                    .expect("setup");
                let report = run.run_to_completion(100_000_000);
                prop_assert!(report.completed, "{mode} run must finish");
                let matched = report.matched_detections();
                prop_assert_eq!(matched.len(), 1, "{} must detect the landed shot", mode);
                total += matched[0].latency_cycles();
            }
            means.push(total as f64 / ats.len() as f64);
        }
        prop_assert!(
            means[0] <= means[1] && means[1] <= means[2],
            "mean latency must order lockstep <= segment_check <= checkpoint_only, got {:?}",
            means
        );
    }
}
