//! Experiment-harness smoke tests: a miniature version of every paper
//! figure/table runs through the same code paths the `fig*`/`tab*`
//! binaries use, so the full experiment suite cannot rot silently.

use flexstep::sched::motivating::{gantt, simulate, Arch, Scenario};
use flexstep::sched::{paper_utilization_axis, sweep, Fig5Config};
use flexstep::soc::{flexstep_soc, vanilla_soc};
use flexstep::workloads::{by_name, Scale};
use flexstep_bench::campaign::{campaign_row, CampaignConfig};
use flexstep_bench::coverage::coverage_campaign;
use flexstep_bench::{fig4, fig6, fig7_campaign, geomean, latency_histogram};

#[test]
fn fig1_mini() {
    let s = Scenario::paper();
    let lock = simulate(&s, Arch::LockStep);
    let hmr = simulate(&s, Arch::Hmr);
    let flex = simulate(&s, Arch::FlexStep);
    assert!(!lock.misses.is_empty());
    assert!(hmr.misses.iter().any(|m| m.task == 0 && m.k == 1));
    assert!(flex.misses.is_empty());
    assert!(gantt(&s, &flex).contains("all deadlines met"));
}

#[test]
fn fig4_mini() {
    let rows = fig4(
        &[by_name("dedup").unwrap(), by_name("mcf").unwrap()],
        Scale::Test,
    );
    assert_eq!(rows.len(), 2);
    let flex = geomean(rows.iter().map(|r| r.flexstep));
    let nzdc = geomean(rows.iter().filter_map(|r| r.nzdc));
    assert!(flex > 1.0 && flex < 1.1, "FlexStep slowdown small: {flex}");
    assert!(nzdc > 1.15, "Nzdc slowdown visible: {nzdc}");
}

#[test]
fn fig5_mini() {
    let axis = paper_utilization_axis();
    assert_eq!(axis.len(), 13);
    let cfg = Fig5Config {
        m: 4,
        n: 20,
        alpha: 0.1,
        beta: 0.05,
    };
    let pts = sweep(&cfg, &[0.4, 0.9], 25, 3);
    assert!(
        pts[0].flexstep >= pts[1].flexstep,
        "acceptance must not rise with load"
    );
    assert!(pts[0].flexstep > 50.0, "low load mostly schedulable");
    assert!(pts[1].lockstep < 50.0, "high load kills LockStep");
}

#[test]
fn fig6_mini() {
    let rows = fig6(&[by_name("swaptions").unwrap()], Scale::Test);
    assert!(rows[0].dual >= 1.0);
    assert!(
        rows[0].triple >= rows[0].dual,
        "wider fan-out cannot be cheaper: {rows:?}"
    );
}

#[test]
fn fig7_mini() {
    let row = fig7_campaign(&by_name("dedup").unwrap(), Scale::Test, 8, 11);
    assert!(row.injected >= 4);
    assert!(row.detected * 10 >= row.injected * 7);
    let h = latency_histogram(&row.latencies_us);
    assert_eq!(h.chars().count(), 15);
}

#[test]
fn fig7_manycore_mini() {
    // A miniature of the fig7_manycore campaign: two chunks on an
    // 8-core shared-checker SoC, one-to-one attribution end to end.
    let cfg = CampaignConfig {
        cores: 8,
        cores_per_checker: 4,
        iters_per_main: 300,
        runs: 2,
        shots_per_run: 5,
        seed: 19,
        recovery: flexstep_bench::RecoveryPolicy::Detect,
        mode: flexstep_bench::ReliabilityMode::SegmentCheck,
    };
    let row = campaign_row(&cfg).expect("valid configuration");
    assert!(row.completed);
    assert_eq!(row.armed, 10);
    assert!(
        row.detected <= row.landed && row.landed <= row.armed,
        "{row:?}"
    );
    assert_eq!(row.landed + row.expired, row.armed);
    assert_eq!(row.per_pool.len(), 2);
    assert_eq!(
        row.per_pool.iter().map(|p| p.detected).sum::<usize>(),
        row.detected
    );
    assert!(row.to_json().contains("\"per_pool\": ["));
}

#[test]
fn fig8_and_tab3_mini() {
    for n in [2usize, 4, 32] {
        let v = vanilla_soc(n);
        let f = flexstep_soc(n);
        assert!(f.area_mm2() > v.area_mm2());
        let overhead = (f.power_w() - v.power_w()) / v.power_w();
        assert!(
            overhead > 0.0 && overhead < 0.05,
            "{n}-core power overhead {overhead}"
        );
    }
}

#[test]
fn coverage_mini() {
    let rows = coverage_campaign(&by_name("libquantum").unwrap(), Scale::Test, 3, 5);
    assert_eq!(rows.len(), 12, "full target × burst grid");
    let total_injected: usize = rows.iter().map(|r| r.injected).sum();
    let total_detected: usize = rows.iter().map(|r| r.detected).sum();
    assert!(
        total_injected >= 12,
        "injections must land: {total_injected}"
    );
    assert!(
        total_detected * 10 >= total_injected * 7,
        "coverage must be high: {total_detected}/{total_injected}"
    );
}
