//! Out-of-order main properties (ISSUE 9 satellite).
//!
//! The OoO superscalar main changes *timing only*: the architectural
//! stream (checkpoints, log entries, instruction counts) is the same
//! serial program order, plus per-branch forwarded outcomes. These
//! tests pin the safety invariants that must survive the model swap:
//!
//! - an OoO main checked by an in-order checker verifies clean,
//! - the fault-injection bookkeeping obeys `detected <= landed <= armed`,
//! - memo on/off stays byte-identical (the PR 6 warp-free clock
//!   invariant) even when the stream carries `Branch` packets,
//! - the checker replays at IPC >= the main's (it skips prediction by
//!   consuming forwarded outcomes, so it can keep up with a wide main).

use flexstep::core::{CoreModelKind, FabricConfig, FaultPlan, Scenario, ScenarioError};
use flexstep::isa::asm::{Assembler, Program};
use flexstep::isa::XReg;
use proptest::prelude::*;

/// A branchy store/load checksum kernel with a slab of independent ALU
/// work per iteration — enough instruction-level parallelism for a wide
/// main to run ahead of 1 IPC, and enough data-dependent control flow
/// and memory traffic to exercise outcome forwarding and the log.
fn ilp_job(slot: u64, iters: i64) -> Program {
    let text = 0x1000_0000 + slot * 0x10_0000;
    let data = 0x2000_0000 + slot * 0x10_0000;
    let mut asm = Assembler::with_bases(format!("ooo{slot}"), text, data);
    asm.la(XReg::A2, "buf");
    asm.data_label("buf").unwrap();
    asm.data_zeros(64);
    asm.li(XReg::A0, iters);
    asm.li(XReg::A4, 0);
    asm.li(XReg::A5, 1);
    asm.li(XReg::A6, 2);
    asm.li(XReg::A7, 3);
    asm.label("l").unwrap();
    asm.sd(XReg::A2, XReg::A0, 0);
    asm.ld(XReg::A3, XReg::A2, 0);
    // Independent ALU slab: no cross-dependencies, so a 4-wide window
    // can retire these alongside the load shadow.
    asm.add(XReg::A5, XReg::A5, XReg::A5);
    asm.add(XReg::A6, XReg::A6, XReg::A6);
    asm.add(XReg::A7, XReg::A7, XReg::A7);
    asm.add(XReg::A4, XReg::A4, XReg::A3);
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "l");
    asm.ecall();
    asm.finish().unwrap()
}

#[test]
fn ooo_main_with_inorder_checker_verifies_clean() {
    let mut run = Scenario::new(&ilp_job(0, 500))
        .cores(2)
        .fabric(FabricConfig::paper())
        .main_core_model(CoreModelKind::ooo())
        .build()
        .unwrap();
    let report = run.run_to_completion(u64::MAX);
    assert!(report.completed);
    assert_eq!(report.segments_failed, 0, "{:?}", report.detections);
    assert!(report.detections.is_empty());
    assert!(report.segments_checked > 0);
}

#[test]
fn ooo_main_outruns_inorder_main() {
    let program = ilp_job(0, 500);
    let ipc_of = |kind: CoreModelKind| {
        let mut run = Scenario::new(&program)
            .cores(2)
            .fabric(FabricConfig::paper())
            .main_core_model(kind)
            .build()
            .unwrap();
        let report = run.run_to_completion(u64::MAX);
        assert!(report.completed);
        assert_eq!(report.segments_failed, 0);
        run.soc().core(0).ipc()
    };
    let inorder = ipc_of(CoreModelKind::InOrder);
    let ooo = ipc_of(CoreModelKind::ooo());
    assert!(
        ooo > inorder,
        "OoO main must beat the in-order pipeline on ILP-rich code: \
         ooo {ooo:.3} vs in-order {inorder:.3}"
    );
}

/// A cache-hostile kernel: strided loads walking a buffer much larger
/// than the L1, with a data-dependent branch per element. The main —
/// in-order or OoO — stalls on misses and mispredicts; the checker
/// replays the same instructions against the *log* (no memory latency)
/// with forwarded outcomes (no prediction), so its replay IPC stays
/// near 1 while the main's sustained IPC drops below it.
fn membound_job(slot: u64, iters: i64) -> Program {
    let text = 0x1000_0000 + slot * 0x10_0000;
    let data = 0x2000_0000 + slot * 0x10_0000;
    let mut asm = Assembler::with_bases(format!("mem{slot}"), text, data);
    asm.la(XReg::A2, "buf");
    asm.data_label("buf").unwrap();
    asm.data_zeros(64 * 1024);
    asm.li(XReg::A0, iters);
    asm.li(XReg::A4, 0);
    asm.li(XReg::A5, 0);
    asm.label("l").unwrap();
    // Stride one cache line per iteration, wrapping at 64 KiB.
    asm.ld(XReg::A3, XReg::A2, 0);
    asm.addi(XReg::A2, XReg::A2, 64);
    asm.add(XReg::A4, XReg::A4, XReg::A3);
    // Data-dependent branch on the loaded value.
    asm.bnez(XReg::A3, "s");
    asm.addi(XReg::A4, XReg::A4, 1);
    asm.label("s").unwrap();
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "l");
    asm.ecall();
    asm.finish().unwrap()
}

#[test]
fn checker_ipc_keeps_up_with_ooo_main() {
    let mut run = Scenario::new(&membound_job(0, 600))
        .cores(2)
        .fabric(FabricConfig::paper())
        .main_core_model(CoreModelKind::ooo())
        .build()
        .unwrap();
    let report = run.run_to_completion(u64::MAX);
    assert!(report.completed);
    assert_eq!(report.segments_failed, 0);
    let main_ipc = run.soc().core(0).ipc();
    let checker_ipc = run.soc().core(1).ipc();
    // Log-backed replay skips the main's cache misses, and forwarded
    // branch outcomes skip prediction; on memory-bound code the checker
    // must not fall behind the main it checks, or lag would grow
    // without bound (§IV sizing).
    assert!(
        checker_ipc >= main_ipc,
        "checker {checker_ipc:.3} IPC vs main {main_ipc:.3} IPC"
    );
}

#[test]
fn heterogeneous_slots_mix_models() {
    let mut run = Scenario::new(&ilp_job(0, 300))
        .program(&ilp_job(1, 300))
        .cores(4)
        .fabric(FabricConfig::paper())
        .core_model(0, CoreModelKind::ooo())
        .build()
        .unwrap();
    let report = run.run_to_completion(u64::MAX);
    assert!(report.completed);
    assert_eq!(report.segments_failed, 0);
    assert_eq!(run.soc().core(0).model_kind(), CoreModelKind::ooo());
    assert_eq!(run.soc().core(2).model_kind(), CoreModelKind::InOrder);
}

#[test]
fn model_slot_out_of_range_is_rejected() {
    let err = Scenario::new(&ilp_job(0, 10))
        .cores(2)
        .core_model(3, CoreModelKind::ooo())
        .build()
        .unwrap_err();
    assert!(matches!(
        err,
        ScenarioError::ModelSlotOutOfRange { slot: 3, mains: 1 }
    ));
}

#[test]
fn injected_faults_on_ooo_stream_are_detected() {
    let mut plan = FaultPlan::none().with_seed(0xD0C5);
    for k in 0..4u64 {
        plan = plan.then_random_at(2_000 + 3_000 * k);
    }
    let mut run = Scenario::new(&ilp_job(0, 800))
        .cores(2)
        .fabric(FabricConfig::paper())
        .main_core_model(CoreModelKind::ooo())
        .fault_plan(plan)
        .build()
        .unwrap();
    let report = run.run_to_completion(u64::MAX);
    assert!(report.completed);
    let detected = report.detections.len() as u64;
    let landed = report.injections.len() as u64;
    assert!(landed > 0, "faults must land on a live OoO stream");
    assert!(detected <= landed && landed <= report.shots_armed);
    assert!(detected > 0, "a corrupted OoO stream must be caught");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any OoO shape x fault schedule keeps the detection ledger
    /// consistent: `detected <= landed <= armed`.
    #[test]
    fn detection_ledger_is_monotone(
        width in 2u8..=6,
        rob_log in 2u32..=6,
        iters in 100i64..600,
        seed in 0u64..u64::MAX,
        shots in 0usize..4,
    ) {
        let mut plan = FaultPlan::none().with_seed(seed);
        for k in 0..shots {
            plan = plan.then_random_at(1_500 + 2_500 * k as u64);
        }
        let kind = CoreModelKind::OooSuperscalar {
            width,
            rob: 1 << rob_log,
        };
        let mut run = Scenario::new(&ilp_job(0, iters))
            .cores(2)
            .fabric(FabricConfig::paper())
            .main_core_model(kind)
            .fault_plan(plan)
            .build()
            .unwrap();
        let report = run.run_to_completion(u64::MAX);
        prop_assert!(report.completed);
        let detected = report.detections.len() as u64;
        let landed = report.injections.len() as u64;
        prop_assert!(detected <= landed);
        prop_assert!(landed <= report.shots_armed);
    }

    /// The warp-free clock invariant holds for Branch-packet streams:
    /// memoized playback of an OoO-main segment is byte-identical to
    /// full replay.
    #[test]
    fn memo_on_off_identical_for_ooo_mains(
        width in 2u8..=6,
        iters in 100i64..500,
    ) {
        let kind = CoreModelKind::OooSuperscalar { width, rob: 32 };
        let program = ilp_job(0, iters);
        let mut reports = [false, true].iter().map(|&memo| {
            let mut run = Scenario::new(&program)
                .cores(2)
                .fabric(FabricConfig::paper())
                .main_core_model(kind)
                .memo(memo)
                .build()
                .unwrap();
            let report = run.run_to_completion(u64::MAX);
            prop_assert!(report.completed);
            prop_assert_eq!(report.segments_failed, 0);
            Ok(report.to_json())
        });
        let off = reports.next().unwrap()?;
        let on = reports.next().unwrap()?;
        prop_assert_eq!(off, on, "memo on/off diverged for an OoO main");
    }
}
