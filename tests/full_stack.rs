//! Cross-crate integration tests: the whole stack from assembler to
//! kernel to detection, exercised through the umbrella crate's public
//! API exactly as a downstream user would.

use flexstep::core::{inject_random_fault, FabricConfig, FaultPlan, MismatchKind, Scenario};
use flexstep::isa::{asm::Assembler, XReg};
use flexstep::kernel::task::{TaskBody, TaskClass, TaskDef, TaskId};
use flexstep::kernel::{KernelConfig, System};
use flexstep::sched::{
    simulate_partition, total_misses, FlexStepPartitioner, GenParams, Partitioner,
};
use flexstep::sim::SocConfig;
use flexstep::workloads::{by_name, nzdc_transform, parsec, spec, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn every_workload_verifies_clean_end_to_end() {
    for w in parsec().into_iter().chain(spec()) {
        let program = w.program(Scale::Test);
        let mut run = Scenario::new(&program)
            .cores(2)
            .fabric(FabricConfig::paper())
            .build()
            .expect("setup");
        let report = run.run_to_completion(u64::MAX);
        assert!(report.completed, "{} must finish", w.name);
        assert_eq!(report.segments_failed, 0, "{} must verify clean", w.name);
        assert!(
            report.segments_checked > 0,
            "{} must produce segments",
            w.name
        );
    }
}

#[test]
fn fault_injection_detects_across_workloads() {
    let mut detected = 0;
    let mut injected = 0;
    for (i, name) in ["dedup", "hmmer", "streamcluster", "x264"]
        .iter()
        .enumerate()
    {
        let program = by_name(name).expect("known workload").program(Scale::Test);
        // The declarative plan arms at cycle 30 000 and fires as soon
        // as forwarded data is in flight.
        let mut run = Scenario::new(&program)
            .cores(2)
            .fault_plan(FaultPlan::random_with_seed(30_000, 1000 + i as u64))
            .build()
            .expect("setup");
        let report = run.run_to_completion(u64::MAX);
        if !report.injections.is_empty() {
            injected += 1;
            if !report.detections.is_empty() {
                detected += 1;
            }
        }
    }
    assert!(injected >= 3, "campaign must inject: {injected}");
    assert!(
        detected >= injected - 1,
        "detections {detected} of {injected}"
    );
}

#[test]
fn nzdc_baseline_preserves_results_and_costs_time() {
    let program = by_name("libquantum").unwrap().program(Scale::Test);
    let transformed = nzdc_transform(&program).expect("transformable");

    let mut plain = flexstep::sim::Soc::new(SocConfig::paper(1)).unwrap();
    plain.run_to_ecall(&program, u64::MAX);
    let mut nzdc = flexstep::sim::Soc::new(SocConfig::paper(1)).unwrap();
    nzdc.run_to_ecall(&transformed, u64::MAX);

    // Same memory results.
    let base = program.symbol("state").unwrap();
    for i in 0..64 {
        assert_eq!(
            plain.mem.phys().read_u64(base + i * 8),
            nzdc.mem.phys().read_u64(base + i * 8),
            "word {i}"
        );
    }
    // Roughly doubled runtime.
    let slowdown = nzdc.now() as f64 / plain.now() as f64;
    assert!(slowdown > 1.3, "nZDC must cost real time: {slowdown}");
}

#[test]
fn kernel_detects_fault_during_scheduled_verification() {
    // A verified task runs under the kernel; corrupt its stream mid-run
    // and check that the detection reaches the kernel's summary.
    let mut asm = Assembler::new("victim");
    asm.data_label("buf").unwrap();
    asm.data_zeros(64);
    asm.la(XReg::A2, "buf");
    asm.li(XReg::A0, 120_000);
    asm.label("l").unwrap();
    asm.sd(XReg::A2, XReg::A0, 0);
    asm.ld(XReg::A3, XReg::A2, 0);
    asm.add(XReg::A4, XReg::A4, XReg::A3);
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "l");
    asm.ecall();
    let program = Arc::new(asm.finish().unwrap());

    let mut sys = System::new(
        SocConfig::paper(2),
        FabricConfig::paper(),
        KernelConfig::default(),
    );
    sys.add_task(TaskDef {
        id: TaskId(1),
        name: "victim".into(),
        class: TaskClass::Verified2,
        body: TaskBody::Guest(program),
        period: 10_000_000,
        phase: 0,
        core: 0,
        checkers: vec![1],
        max_jobs: Some(1),
    })
    .unwrap();
    sys.boot().unwrap();
    // Run a while, inject, then finish.
    sys.run_until(200_000);
    let mut rng = StdRng::seed_from_u64(5);
    let now = sys.now();
    let injected = inject_random_fault(sys.fabric_mut(), 0, now, &mut rng);
    let summary = sys.run_until(9_000_000);
    if injected.is_some() {
        assert!(
            !summary.detections.is_empty(),
            "kernel must surface the detection event"
        );
        let d = &summary.detections[0];
        assert_eq!(d.tag, 1, "detection attributed to τ1's stream");
        assert!(
            !matches!(d.kind, MismatchKind::LogUnderrun),
            "typed mismatch expected"
        );
    }
}

#[test]
fn partition_accepted_by_al3_survives_edf_simulation() {
    let mut rng = StdRng::seed_from_u64(77);
    let mut validated = 0;
    for _ in 0..25 {
        let ts = flexstep::sched::generate(&mut rng, &GenParams::paper(32, 3.2, 0.125, 0.0625));
        if let Some(p) = FlexStepPartitioner.partition(&ts, 8) {
            let results = simulate_partition(&ts, &p, 30.0);
            assert_eq!(total_misses(&results), 0, "Al. 3 admission must be sound");
            validated += 1;
        }
    }
    assert!(validated > 0, "at least one set should be schedulable");
}

#[test]
fn custom_isa_instructions_execute_from_guest_code() {
    use flexstep::core::{CoreAttr, EngineStep, FlexSoc};
    use flexstep::isa::inst::{FlexOp, Inst};
    use flexstep::sim::{PrivMode, StepKind};

    // A guest program that reads its own core attribute via
    // `G.IDs.contain` (Tab. I) and returns it in a0.
    let mut asm = Assembler::new("attr_probe");
    asm.li(XReg::A1, 0); // core id 0
    asm.push(Inst::Flex {
        op: FlexOp::GIdsContain,
        rd: XReg::A0,
        rs1: XReg::A1,
        rs2: XReg::ZERO,
    });
    asm.ecall();
    let program = asm.finish().unwrap();

    let mut fs = FlexSoc::new(SocConfig::paper(2), FabricConfig::paper()).unwrap();
    fs.op_g_configure(&[0], &[1]).unwrap();
    fs.soc.load_program(&program);
    fs.soc.core_mut(0).state.pc = program.entry;
    fs.soc.core_mut(0).state.prv = PrivMode::User;
    fs.soc.core_mut(0).unpark();

    for _ in 0..100 {
        match fs.step(0) {
            EngineStep::Core(StepKind::Flex {
                op,
                rd,
                rs1_value,
                rs2_value,
                ..
            }) => {
                fs.exec_flex(0, op, rd, rs1_value, rs2_value).unwrap();
            }
            EngineStep::Core(StepKind::Trap { .. }) => break,
            _ => {}
        }
    }
    assert_eq!(
        fs.soc.core(0).state.x(XReg::A0),
        CoreAttr::Main.to_bits(),
        "guest sees its own main attribute"
    );
}
