//! Tier-1 smoke test: the exact quick-start path the umbrella crate's
//! docs and the README promise, end to end, on the smallest workload
//! scale so it stays fast.

use flexstep::core::{FabricConfig, Scenario, Topology};
use flexstep::workloads::{by_name, Scale};

#[test]
fn readme_quickstart_path() {
    let program = by_name("dedup")
        .expect("dedup is a published workload")
        .program(Scale::Test);
    let mut run = Scenario::new(&program)
        .cores(2)
        .topology(Topology::PairedLockstep)
        .fabric(FabricConfig::paper())
        .build()
        .expect("dual-core scenario configures");
    let report = run.run_to_completion(100_000_000);
    assert!(
        report.completed,
        "quick-start run must finish within budget"
    );
    assert_eq!(
        report.segments_failed, 0,
        "fault-free run must verify clean"
    );
    assert!(
        report.segments_checked > 0,
        "verification must actually cover segments"
    );
}

#[test]
fn unknown_workload_is_a_clean_none() {
    assert!(by_name("no-such-workload").is_none());
}
